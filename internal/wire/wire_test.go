package wire_test

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/replica"
	"repro/internal/runtime"
	"repro/internal/store"
	"repro/internal/wire"
)

// corpusMessages is a representative instance of every externally
// constructible registered message — the fuzz seed corpus and the
// round-trip test both walk it. (The reliable layer's dataMsg/ackMsg are
// package-private; the fuzzer reaches their tags by mutation.)
func corpusMessages() []any {
	id := agent.ID{Home: 3, Born: 123456789, Seq: 42}
	id2 := agent.ID{Home: 1, Born: 99, Seq: 7}
	snap := replica.QueueSnapshot{
		Server: 2, Shard: 5, Epoch: 1, Version: 17, HeadVersion: 12,
		Queue: []agent.ID{id, id2},
	}
	info := &replica.LockInfo{
		Locals:  []replica.QueueSnapshot{snap},
		Gone:    []agent.ID{id2},
		Remote:  []replica.QueueSnapshot{{Server: 4, Shard: 5, Epoch: 2, Version: 3, Queue: []agent.ID{id}}},
		Costs:   map[runtime.NodeID]float64{1: 1.5, 2: 0, 4: math.Inf(1)},
		LastSeq: 88,
	}
	return []any{
		&agent.WireEnvelope{ID: id, Hop: 9, State: []byte{0xA7, 1, 2, 3}},
		&agent.MigrateAck{ID: id, Hop: 9},
		&agent.MigrateAckBatch{Acks: []agent.MigrateAck{{ID: id, Hop: 9}, {ID: id2, Hop: 1}}},
		&agent.AgentMsg{Target: id, Payload: &core.OutcomeMsg{Outcome: core.Outcome{
			Agent: id, Home: 3, Requests: 2, Dispatched: 10, LockAt: 20, DoneAt: 30,
			Visits: 4, ByTie: true, Retries: 1, Shards: []int{0, 5},
		}}},
		&replica.UpdateMsg{
			Txn: id, Attempt: 2, Origin: 3, Keys: []string{"alpha", "beta"},
			Shards: []int{0, 5}, ByTie: true,
			Evidence: map[runtime.NodeID]uint64{1: 4, 2: 9},
		},
		&replica.AckMsg{
			Txn: id, Attempt: 2, From: 1, OK: true, ShardSeqs: []uint64{3, 0},
			Values: map[string]store.Value{"alpha": {Data: "v", Version: store.Version{Seq: 3, Stamp: 7, Writer: "t1"}}},
		},
		&replica.AckMsg{Txn: id, Attempt: 2, From: 1, Reason: "busy", Info: info},
		&replica.CommitMsg{Txn: id, Origin: 3, Updates: []store.Update{
			{TxnID: "t1", Key: "alpha", Data: "v", Seq: 4, Stamp: 11},
		}},
		&replica.AbortMsg{Txn: id, Attempt: 2},
		&replica.ReadReq{ReqID: 77, From: 2, Key: "alpha"},
		&replica.ReadRep{ReqID: 77, From: 2, Found: true, Value: store.Value{Data: "v", Version: store.Version{Seq: 1}}},
		&replica.SyncRequest{From: 2, Shard: 5, Since: 3},
		&replica.SyncReply{From: 2, Shard: 5, Updates: []store.Update{{TxnID: "t2", Key: "k", Data: "w", Seq: 5, Stamp: 13}}, Gone: []agent.ID{id2}},
		replica.LLChanged{Server: 2},
		replica.LLChanged{Server: 2, Shards: []int{1, 5, 63}},
		&core.OutcomeMsg{Outcome: core.Outcome{Agent: id, Home: 3, Failed: true}},
	}
}

// TestMessagesRoundTrip encodes every corpus message and decodes it back to
// a deeply equal value.
func TestMessagesRoundTrip(t *testing.T) {
	for _, msg := range corpusMessages() {
		buf, err := wire.AppendMessage(nil, msg)
		if err != nil {
			t.Fatalf("%T: %v", msg, err)
		}
		r := wire.NewReader(buf)
		back, err := wire.DecodeMessage(r)
		if err != nil {
			t.Fatalf("%T: decode: %v", msg, err)
		}
		if err := r.Finish(); err != nil {
			t.Fatalf("%T: %v", msg, err)
		}
		if !reflect.DeepEqual(normalize(msg), normalize(back)) {
			t.Fatalf("%T round trip changed value:\nsent %+v\ngot  %+v", msg, msg, back)
		}
	}
}

// normalize collapses nil-vs-empty differences that the codec is allowed to
// introduce (an absent collection decodes as nil).
func normalize(v any) any {
	data, err := wire.AppendMessage(nil, v)
	if err != nil {
		return v
	}
	return fmt.Sprintf("%x", data)
}

// TestPrimitivesRoundTrip drives every primitive through an append/read
// cycle.
func TestPrimitivesRoundTrip(t *testing.T) {
	var b []byte
	b = wire.AppendUvarint(b, 0)
	b = wire.AppendUvarint(b, math.MaxUint64)
	b = wire.AppendVarint(b, -1)
	b = wire.AppendVarint(b, math.MinInt64)
	b = wire.AppendString(b, "hello")
	b = wire.AppendString(b, "")
	b = wire.AppendBytes(b, []byte{1, 2, 3})
	b = wire.AppendBool(b, true)
	b = wire.AppendBool(b, false)
	b = wire.AppendFloat(b, 3.25)
	b = wire.AppendFloat(b, math.Inf(-1))

	r := wire.NewReader(b)
	if v := r.Uvarint(); v != 0 {
		t.Fatalf("uvarint: %d", v)
	}
	if v := r.Uvarint(); v != math.MaxUint64 {
		t.Fatalf("uvarint max: %d", v)
	}
	if v := r.Varint(); v != -1 {
		t.Fatalf("varint: %d", v)
	}
	if v := r.Varint(); v != math.MinInt64 {
		t.Fatalf("varint min: %d", v)
	}
	if s := r.String(); s != "hello" {
		t.Fatalf("string: %q", s)
	}
	if s := r.String(); s != "" {
		t.Fatalf("empty string: %q", s)
	}
	if p := r.Bytes(); !bytes.Equal(p, []byte{1, 2, 3}) {
		t.Fatalf("bytes: %v", p)
	}
	if v := r.Bool(); !v {
		t.Fatal("bool true")
	}
	if v := r.Bool(); v {
		t.Fatal("bool false")
	}
	if v := r.Float(); v != 3.25 {
		t.Fatalf("float: %v", v)
	}
	if v := r.Float(); !math.IsInf(v, -1) {
		t.Fatalf("float -inf: %v", v)
	}
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptInputSafety feeds malformed encodings to the reader: every
// case must surface a sticky error, never panic, and never allocate
// proportionally to a hostile length prefix.
func TestCorruptInputSafety(t *testing.T) {
	cases := []struct {
		name string
		data []byte
		read func(r *wire.Reader)
	}{
		{"empty uvarint", nil, func(r *wire.Reader) { r.Uvarint() }},
		{"truncated uvarint", []byte{0x80}, func(r *wire.Reader) { r.Uvarint() }},
		{"truncated varint", []byte{0xFF}, func(r *wire.Reader) { r.Varint() }},
		{"bytes length past end", []byte{10, 1, 2}, func(r *wire.Reader) { r.Bytes() }},
		{"missing bool", nil, func(r *wire.Reader) { r.Bool() }},
		{"bad bool", []byte{7}, func(r *wire.Reader) { r.Bool() }},
		{"short float", []byte{1, 2, 3}, func(r *wire.Reader) { r.Float() }},
		// A count of 2^60 with 3 bytes of input must be rejected before
		// any allocation happens.
		{"hostile count", append(wire.AppendUvarint(nil, 1<<60), 1, 2, 3), func(r *wire.Reader) { r.Count(1) }},
	}
	for _, tc := range cases {
		r := wire.NewReader(tc.data)
		tc.read(r)
		if r.Err() == nil {
			t.Fatalf("%s: no error", tc.name)
		}
		// The sticky error zeroes all subsequent reads.
		if v := r.Uvarint(); v != 0 {
			t.Fatalf("%s: read after error returned %d", tc.name, v)
		}
		if s := r.String(); s != "" {
			t.Fatalf("%s: read after error returned %q", tc.name, s)
		}
	}
	// Trailing garbage after a well-formed read fails Finish.
	r := wire.NewReader([]byte{1, 99})
	r.Uvarint()
	if err := r.Finish(); err == nil {
		t.Fatal("trailing bytes not rejected")
	}
}

// TestUnknownTagRejected: an unregistered tag is an explicit error, not a
// misparse.
func TestUnknownTagRejected(t *testing.T) {
	r := wire.NewReader([]byte{0xFE, 1, 2, 3})
	if _, err := wire.DecodeMessage(r); err == nil {
		t.Fatal("unknown tag accepted")
	}
}

// corpusDir is the checked-in fuzz seed corpus: one encoded frame per
// registered message shape.
const corpusDir = "testdata"

// TestSeedCorpusDecodes guards the checked-in corpus against wire-format
// drift: every seed must still decode cleanly. Regenerate with
// UPDATE_WIRE_CORPUS=1 go test ./internal/wire/ -run TestSeedCorpus
func TestSeedCorpusDecodes(t *testing.T) {
	if os.Getenv("UPDATE_WIRE_CORPUS") == "1" {
		if err := os.MkdirAll(corpusDir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, msg := range corpusMessages() {
			buf, err := wire.AppendMessage(nil, msg)
			if err != nil {
				t.Fatal(err)
			}
			name := filepath.Join(corpusDir, fmt.Sprintf("msg-%02d.bin", i))
			if err := os.WriteFile(name, buf, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	ents, err := os.ReadDir(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	seeds := 0
	for _, ent := range ents {
		if filepath.Ext(ent.Name()) != ".bin" {
			continue
		}
		data, err := os.ReadFile(filepath.Join(corpusDir, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		r := wire.NewReader(data)
		if _, err := wire.DecodeMessage(r); err != nil {
			t.Fatalf("%s: %v", ent.Name(), err)
		}
		if err := r.Finish(); err != nil {
			t.Fatalf("%s: %v", ent.Name(), err)
		}
		seeds++
	}
	if want := len(corpusMessages()); seeds != want {
		t.Fatalf("corpus has %d seeds, want %d (regenerate with UPDATE_WIRE_CORPUS=1)", seeds, want)
	}
}

// FuzzDecodeMessage hammers the full tagged-message decoder with mutated
// frames. Properties: never panic, never over-allocate on hostile counts,
// and any accepted input re-encodes to something that decodes to the same
// bytes (encode∘decode is a projection).
func FuzzDecodeMessage(f *testing.F) {
	for _, msg := range corpusMessages() {
		buf, err := wire.AppendMessage(nil, msg)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	if ents, err := os.ReadDir(corpusDir); err == nil {
		for _, ent := range ents {
			if data, err := os.ReadFile(filepath.Join(corpusDir, ent.Name())); err == nil {
				f.Add(data)
			}
		}
	}
	var intern wire.Interner
	f.Fuzz(func(t *testing.T, data []byte) {
		r := wire.NewReader(data)
		r.SetInterner(&intern)
		v, err := wire.DecodeMessage(r)
		if err != nil || r.Finish() != nil {
			return // malformed input rejected: fine
		}
		buf, err := wire.AppendMessage(nil, v)
		if err != nil {
			t.Fatalf("decoded %T but cannot re-encode: %v", v, err)
		}
		r2 := wire.NewReader(buf)
		v2, err := wire.DecodeMessage(r2)
		if err != nil || r2.Finish() != nil {
			t.Fatalf("re-encoding of %T does not decode: %v", v, err)
		}
		buf2, err := wire.AppendMessage(nil, v2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, buf2) {
			t.Fatalf("%T not stable under encode/decode:\n% x\n% x", v, buf, buf2)
		}
	})
}

// FuzzReaderPrimitives drives the primitive readers over arbitrary input:
// no panic, and once the sticky error arms every read returns zero values.
func FuzzReaderPrimitives(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x80, 0xFF, 3, 1, 2, 3, 1, 0})
	f.Add(wire.AppendString(wire.AppendUvarint(nil, 7), "seed"))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := wire.NewReader(data)
		for r.Err() == nil && r.Len() > 0 {
			n := r.Count(1)
			for i := 0; i < n && r.Err() == nil; i++ {
				switch i % 5 {
				case 0:
					r.Uvarint()
				case 1:
					r.Varint()
				case 2:
					_ = r.String()
				case 3:
					r.Bool()
				case 4:
					r.Float()
				}
			}
			if n == 0 && r.Err() == nil {
				r.Uvarint()
			}
		}
		if r.Err() != nil {
			if v := r.Uvarint(); v != 0 {
				t.Fatalf("read after sticky error: %d", v)
			}
			if b := r.Bytes(); b != nil {
				t.Fatalf("bytes after sticky error: %v", b)
			}
		}
	})
}

// FuzzDecodeWireState exercises the agent-state decoder (magic sniff + gob
// fallback) with corrupt input: it must reject or accept, never panic.
func FuzzDecodeWireState(f *testing.F) {
	st := core.WireState{
		Requests:   []core.Request{{Key: "k", Op: core.OpSet, Arg: "v"}},
		USL:        []runtime.NodeID{2, 3},
		Visits:     3,
		Dispatched: 12345,
		Gone:       []agent.ID{{Home: 1, Born: 9, Seq: 2}},
	}
	if data, err := st.Encode(); err == nil {
		f.Add(data)
	}
	if data, err := st.EncodeGob(); err == nil {
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		back, err := core.DecodeWireState(data)
		if err != nil {
			return
		}
		if _, err := back.Encode(); err != nil {
			t.Fatalf("accepted state cannot re-encode: %v", err)
		}
	})
}
