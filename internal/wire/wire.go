// Package wire is the hand-rolled binary codec for the live fabric's
// closed set of protocol messages (DESIGN.md §11). It replaces
// encoding/gob on the live-path hot loops: encoding appends into a
// caller-reused buffer (zero allocations in steady state, following the
// PR 1 free-list discipline), decoding walks a bounds-checked Reader with
// a sticky error (the internal/durable decoder idiom), and every concrete
// message type is registered under a one-byte tag by the package that owns
// it — mirroring runtime.RegisterWireType, so no import cycles form.
//
// Encoding rules:
//
//   - unsigned integers are LEB128 uvarints, signed are zig-zag varints
//     (encoding/binary's AppendUvarint/AppendVarint);
//   - strings and byte slices are uvarint-length-prefixed;
//   - float64 is 8 fixed little-endian bytes of its IEEE-754 bits;
//   - bools are one byte, 0 or 1;
//   - slices are uvarint-count-prefixed; maps are sorted by key before
//     writing so the encoding is deterministic;
//   - a tagged message is one tag byte followed by its body; nested
//     payloads (AgentMsg, the reliable layer's frames) recurse through the
//     registry.
//
// The decoder never trusts a length or count prefix further than the bytes
// actually remaining in its input: adversarial prefixes produce an error,
// never a panic or an over-sized allocation.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"reflect"
)

// Version is the wire-format version byte carried in the live fabric's
// connection preamble. Nodes refuse peers speaking any other version (or
// gob) loudly instead of mis-decoding them.
const Version = 1

// Preamble is what a wire-codec connection starts with: a magic that can
// never begin a gob stream, then the format version.
var Preamble = [5]byte{'M', 'A', 'R', 'P', Version}

// ErrUnknownTag reports a tag byte with no registered message type.
var ErrUnknownTag = errors.New("wire: unknown message tag")

// MaxFrame bounds a length-prefixed fabric frame. A peer announcing more
// is corrupt (or hostile) and the connection is dropped before any
// allocation happens.
const MaxFrame = 64 << 20

// --- append primitives --------------------------------------------------

// AppendUvarint appends v as a LEB128 uvarint.
func AppendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

// AppendVarint appends v as a zig-zag varint.
func AppendVarint(b []byte, v int64) []byte { return binary.AppendVarint(b, v) }

// AppendString appends s with a uvarint length prefix.
func AppendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// AppendBytes appends p with a uvarint length prefix.
func AppendBytes(b []byte, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

// AppendBool appends v as one byte.
func AppendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// AppendFloat appends f as its 8 IEEE-754 bits, little-endian.
func AppendFloat(b []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
}

// --- Reader -------------------------------------------------------------

// Reader decodes one encoded message with a sticky error: after the first
// malformed field every subsequent read returns a zero value, and Err
// reports what went wrong. All length and count prefixes are validated
// against the bytes remaining, so corrupt input cannot drive allocation.
type Reader struct {
	b      []byte
	err    error
	intern *Interner
}

// NewReader returns a Reader over b.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Reset rearms the reader over b, keeping its interner.
func (r *Reader) Reset(b []byte) { r.b, r.err = b, nil }

// SetInterner attaches a string interner: String() returns canonical
// strings from it instead of allocating. Decode paths that run per-frame
// keep one interner per connection for zero-alloc steady state.
func (r *Reader) SetInterner(t *Interner) { r.intern = t }

// Err returns the sticky error, if any.
func (r *Reader) Err() error { return r.err }

// Len returns the number of unread bytes.
func (r *Reader) Len() int { return len(r.b) }

// fail arms the sticky error.
func (r *Reader) fail(msg string) {
	if r.err == nil {
		r.err = fmt.Errorf("wire: %s", msg)
	}
}

// Uvarint reads a LEB128 uvarint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail("short uvarint")
		return 0
	}
	r.b = r.b[n:]
	return v
}

// Varint reads a zig-zag varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b)
	if n <= 0 {
		r.fail("short varint")
		return 0
	}
	r.b = r.b[n:]
	return v
}

// Count reads a slice/map count and validates it against the remaining
// input assuming each element occupies at least minElemBytes (>= 1), so a
// hostile prefix can never force an over-sized allocation.
func (r *Reader) Count(minElemBytes int) int {
	if minElemBytes < 1 {
		minElemBytes = 1
	}
	n := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if n > uint64(len(r.b)/minElemBytes) {
		r.fail("count exceeds input")
		return 0
	}
	return int(n)
}

// Bytes reads a length-prefixed byte slice as a view into the input (no
// copy; the view is invalidated by Reset). Callers that keep the bytes
// must copy them.
func (r *Reader) Bytes() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b)) {
		r.fail("short bytes")
		return nil
	}
	p := r.b[:n:n]
	r.b = r.b[n:]
	return p
}

// String reads a length-prefixed string, interned when an Interner is
// attached.
func (r *Reader) String() string {
	p := r.Bytes()
	if r.err != nil || len(p) == 0 {
		return ""
	}
	if r.intern != nil {
		return r.intern.Intern(p)
	}
	return string(p)
}

// Bool reads one byte as a bool (only 0 and 1 are well-formed).
func (r *Reader) Bool() bool {
	if r.err != nil {
		return false
	}
	if len(r.b) < 1 {
		r.fail("short bool")
		return false
	}
	v := r.b[0]
	r.b = r.b[1:]
	if v > 1 {
		r.fail("bad bool")
		return false
	}
	return v == 1
}

// Float reads 8 little-endian bytes as a float64.
func (r *Reader) Float() float64 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 8 {
		r.fail("short float")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b))
	r.b = r.b[8:]
	return v
}

// Finish reports the sticky error, or an error if input remains unread —
// a whole-message decode must consume its input exactly.
func (r *Reader) Finish() error {
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return fmt.Errorf("wire: %d trailing bytes", len(r.b))
	}
	return nil
}

// Grow returns s resized to n elements, reusing its capacity when it
// suffices. Growing through append keeps whatever spare capacity the
// runtime hands back, and — unlike a fresh make — re-extends over elements
// that were previously shrunk away, so nested slices they hold keep their
// own capacity too. Decode-into paths use it for zero-alloc steady state.
func Grow[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return append(s[:cap(s)], make([]T, n-cap(s))...)
}

// --- Interner -----------------------------------------------------------

// internCap bounds the interner; past it the table is cleared rather than
// grown, so an adversarial key stream cannot pin unbounded memory.
const internCap = 4096

// Interner canonicalizes decoded strings. The map lookup with a string
// conversion of a byte slice does not allocate (the compiler recognizes
// the idiom), so a hit is allocation-free — the decode benchmarks' 0
// allocs/op rests on this.
type Interner struct {
	m map[string]string
}

// Intern returns the canonical string equal to b.
func (t *Interner) Intern(b []byte) string {
	if t.m == nil {
		t.m = make(map[string]string, 64)
	}
	if s, ok := t.m[string(b)]; ok {
		return s
	}
	if len(t.m) >= internCap {
		clear(t.m)
	}
	s := string(b)
	t.m[s] = s
	return s
}

// --- message registry ---------------------------------------------------

// EncodeFunc appends v's body (no tag) to buf. Encoders cannot fail: the
// message set is closed and every field is encodable by construction.
type EncodeFunc func(buf []byte, v any) []byte

// DecodeFunc decodes one message body from r, reporting malformed input
// through r's sticky error (and returning nil).
type DecodeFunc func(r *Reader) any

type entry struct {
	tag  byte
	name string
	enc  EncodeFunc
	dec  DecodeFunc
}

var (
	byType = map[reflect.Type]*entry{}
	byTag  [256]*entry
)

// Register binds tag to prototype's concrete type. Packages call it from
// init for every payload type they put on the fabric, exactly as they call
// runtime.RegisterWireType for gob. Tags are part of the wire format:
// never renumber.
func Register(tag byte, prototype any, enc EncodeFunc, dec DecodeFunc) {
	t := reflect.TypeOf(prototype)
	if byTag[tag] != nil {
		panic(fmt.Sprintf("wire: tag %d registered twice (%s and %s)", tag, byTag[tag].name, t))
	}
	if _, dup := byType[t]; dup {
		panic(fmt.Sprintf("wire: type %s registered twice", t))
	}
	e := &entry{tag: tag, name: t.String(), enc: enc, dec: dec}
	byType[t] = e
	byTag[tag] = e
}

// AppendMessage appends v as one tagged message. An unregistered payload
// type is an error — the live fabric counts and drops it loudly rather
// than guessing.
func AppendMessage(buf []byte, v any) ([]byte, error) {
	e, ok := byType[reflect.TypeOf(v)]
	if !ok {
		return buf, fmt.Errorf("wire: unregistered payload type %T", v)
	}
	buf = append(buf, e.tag)
	return e.enc(buf, v), nil
}

// DecodeMessage decodes one tagged message from r. The concrete type
// returned is exactly what the sender passed to AppendMessage.
func DecodeMessage(r *Reader) (any, error) {
	if r.err != nil {
		return nil, r.err
	}
	if len(r.b) < 1 {
		r.fail("missing message tag")
		return nil, r.err
	}
	tag := r.b[0]
	r.b = r.b[1:]
	e := byTag[tag]
	if e == nil {
		r.err = fmt.Errorf("%w %d", ErrUnknownTag, tag)
		return nil, r.err
	}
	v := e.dec(r)
	if r.err != nil {
		return nil, r.err
	}
	return v, nil
}

// Registered reports whether v's concrete type has a codec — the fabric's
// fail-loudly check happens before a frame is queued.
func Registered(v any) bool {
	_, ok := byType[reflect.TypeOf(v)]
	return ok
}
