package des

import (
	"testing"
	"time"
)

// TestFreeListRecyclesOnFire: once the pool is warm, a schedule/fire cycle
// allocates no events — the struct the last fire released is the one the
// next After hands out.
func TestFreeListRecyclesOnFire(t *testing.T) {
	s := New(1)
	s.After(time.Microsecond, func() {})
	s.Step() // warm the free list
	allocs := testing.AllocsPerRun(1000, func() {
		s.After(time.Microsecond, func() {})
		if !s.Step() {
			t.Fatal("no event to fire")
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state schedule/fire allocates %.1f objects/op, want 0", allocs)
	}
}

// TestFreeListRecyclesOnCancel: cancelling returns the event to the free
// list immediately, so schedule/cancel cycles are also allocation-free.
func TestFreeListRecyclesOnCancel(t *testing.T) {
	s := New(1)
	s.After(time.Second, func() {}).Cancel() // warm the free list
	allocs := testing.AllocsPerRun(1000, func() {
		tm := s.After(time.Second, func() {})
		if !tm.Cancel() {
			t.Fatal("Cancel reported not pending")
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state schedule/cancel allocates %.1f objects/op, want 0", allocs)
	}
}

// TestStaleTimerIsInert: a Timer held across its event's recycling must not
// touch the event's new occupant — the generation check makes stale Cancels
// provable no-ops.
func TestStaleTimerIsInert(t *testing.T) {
	s := New(1)
	stale := s.After(time.Millisecond, func() {})
	if !stale.Cancel() {
		t.Fatal("first Cancel should succeed")
	}
	// This schedule reuses the struct stale points at.
	fired := false
	fresh := s.After(time.Millisecond, func() { fired = true })
	if stale.Active() {
		t.Fatal("stale handle reports Active")
	}
	if stale.Cancel() {
		t.Fatal("stale Cancel should be a no-op")
	}
	if stale.When() != 0 {
		t.Fatalf("stale When = %v, want 0", stale.When())
	}
	if !fresh.Active() {
		t.Fatal("fresh event lost")
	}
	s.Run()
	if !fired {
		t.Fatal("stale handle cancelled the recycled event")
	}
}

// TestCancelRemovesFromQueue: cancellation reaps immediately, anywhere in
// the heap, so Pending is exact and drain checks cannot over-count.
func TestCancelRemovesFromQueue(t *testing.T) {
	s := New(1)
	var timers []Timer
	for i := 1; i <= 10; i++ {
		timers = append(timers, s.After(time.Duration(i)*time.Millisecond, func() {}))
	}
	if s.Pending() != 10 {
		t.Fatalf("Pending = %d, want 10", s.Pending())
	}
	timers[0].Cancel() // heap top
	timers[5].Cancel() // mid-heap
	timers[9].Cancel() // deep
	if s.Pending() != 7 {
		t.Fatalf("Pending after 3 cancels = %d, want 7", s.Pending())
	}
	// The survivors still fire in timestamp order.
	fired := 0
	var last Time
	for s.Step() {
		if s.Now() < last {
			t.Fatal("out-of-order firing after mid-heap removal")
		}
		last = s.Now()
		fired++
	}
	if fired != 7 {
		t.Fatalf("fired %d events, want 7", fired)
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending after drain = %d, want 0", s.Pending())
	}
}

// TestSelfCancelDuringFire: cancelling the event that is currently firing
// (a timeout handler tidying up its own timer) is a no-op, not a
// double-free.
func TestSelfCancelDuringFire(t *testing.T) {
	s := New(1)
	var tm Timer
	tm = s.After(time.Millisecond, func() {
		if tm.Cancel() {
			t.Error("self-cancel during fire should report false")
		}
	})
	s.Run()
	// The struct must be recyclable exactly once: schedule two events and
	// make sure both fire.
	count := 0
	s.After(time.Millisecond, func() { count++ })
	s.After(2*time.Millisecond, func() { count++ })
	s.Run()
	if count != 2 {
		t.Fatalf("fired %d events after self-cancel, want 2", count)
	}
}

// BenchmarkSchedule measures a push/remove pair into a queue that stays
// 1024 events deep — the pure queue-maintenance cost with no firing.
func BenchmarkSchedule(b *testing.B) {
	s := New(1)
	for j := 0; j < 1024; j++ {
		s.After(time.Duration(j+1)*time.Millisecond, func() {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(500*time.Microsecond, func() {}).Cancel()
	}
}

// BenchmarkStep measures a schedule/fire cycle at a realistic queue depth
// (1024 in-flight events, the order of a loaded 7-server run).
func BenchmarkStep(b *testing.B) {
	s := New(1)
	for j := 0; j < 1024; j++ {
		s.After(time.Duration(j+1)*time.Millisecond, func() {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(time.Microsecond, func() {})
		s.Step()
	}
}

// BenchmarkCancel measures schedule-then-cancel of the queue head (the
// reap-on-cancel fast path).
func BenchmarkCancel(b *testing.B) {
	s := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.After(time.Millisecond, func() {}).Cancel()
	}
}
