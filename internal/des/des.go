// Package des implements a deterministic discrete-event simulator.
//
// The simulator maintains a virtual clock and a priority queue of timed
// events. Events scheduled for the same virtual instant fire in the order
// they were scheduled (FIFO within a timestamp), which makes every run with
// the same seed and the same schedule byte-for-byte reproducible. All of the
// simulated substrates in this repository — the network, the agent platform,
// the replicated servers — are driven by a single Simulator, so an entire
// distributed execution is a deterministic, single-threaded function of its
// inputs.
//
// Virtual time is expressed as a Time (nanoseconds since the start of the
// simulation). Durations use the standard time.Duration so call sites read
// naturally (sim.After(3*time.Millisecond, fn)). No wall-clock time is ever
// consulted.
//
// # Allocation behaviour
//
// Scheduling is the hottest path in the whole reproduction: every simulated
// message delivery, timer, and migration is one event. The simulator
// therefore recycles Event structs through a per-simulator free list (safe
// because a Simulator is single-goroutine by construction) and keeps the
// priority queue as a concrete-typed binary heap, avoiding the interface
// boxing that container/heap forces on every Push/Pop. In steady state a
// schedule/fire cycle allocates nothing.
//
// Because Event structs are recycled, the handle returned by At/After is a
// Timer: a small value carrying the event pointer plus the generation at
// which it was scheduled. A Timer held after its event fired or was
// cancelled is stale — its generation no longer matches — so Cancel and
// Active on it are guaranteed no-ops even if the underlying struct has been
// reused for a later event.
package des

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/runtime"
)

// Time is a virtual timestamp: nanoseconds since the simulation epoch. It
// is the engine-neutral runtime.Time — protocol code sees only that name;
// this alias keeps simulator-side call sites reading naturally.
type Time = runtime.Time

// Event is the simulator-owned record of one scheduled callback. Events are
// pooled and recycled; user code never holds an Event directly, only a
// generation-checked Timer.
type Event struct {
	when  Time
	seq   uint64 // tie-break: FIFO among equal timestamps
	fn    func()
	index int    // heap index; -1 when not queued
	gen   uint64 // bumped every time the event leaves the queue
	sim   *Simulator
}

// Timer is a handle to a scheduled event, returned by At and After. The zero
// Timer is valid and inert. Timers are values: copy them freely.
type Timer struct {
	e   *Event
	gen uint64
}

// Active reports whether the event is still pending (not fired, not
// cancelled).
func (t Timer) Active() bool { return t.e != nil && t.e.gen == t.gen }

// When reports the virtual time at which the pending event fires; it
// returns 0 once the event has fired or been cancelled.
func (t Timer) When() Time {
	if !t.Active() {
		return 0
	}
	return t.e.when
}

// Cancel prevents the event from firing and removes it from the queue
// immediately. Cancelling an event that already fired or was already
// cancelled is a no-op (the generation check makes this safe even though
// the underlying Event struct may since have been recycled). Cancel reports
// whether the event was still pending.
func (t Timer) Cancel() bool {
	e := t.e
	if e == nil || e.gen != t.gen {
		return false
	}
	s := e.sim
	s.remove(e)
	s.release(e)
	return true
}

// Simulator is a deterministic discrete-event engine. It is not safe for
// concurrent use: all event handlers run on the caller's goroutine, one at a
// time, which is precisely what makes runs reproducible.
type Simulator struct {
	now     Time
	events  []*Event // binary min-heap ordered by (when, seq)
	free    []*Event // recycled Event structs
	seq     uint64
	rng     *rand.Rand
	steps   uint64
	maxStep uint64 // safety valve; 0 = unlimited
	stopped bool
}

// New returns a simulator whose random source is seeded with seed. Two
// simulators created with the same seed and fed the same schedule produce
// identical executions.
func New(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Rand returns the simulator's seeded random source. All randomness in a
// simulation must come from this source to preserve determinism.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Steps reports how many events have fired so far.
func (s *Simulator) Steps() uint64 { return s.steps }

// SetMaxSteps installs a safety limit on the number of events a Run may
// process; 0 removes the limit. Exceeding the limit panics, which turns an
// accidental livelock in protocol code into a loud test failure instead of a
// hung test binary.
func (s *Simulator) SetMaxSteps(n uint64) { s.maxStep = n }

// At schedules fn to run at virtual time t. Scheduling in the past (t before
// Now) panics: a simulated component can never affect its own past.
func (s *Simulator) At(t Time, fn func()) Timer {
	if t < s.now {
		panic(fmt.Sprintf("des: scheduling event at %v before now %v", t, s.now))
	}
	if fn == nil {
		panic("des: nil event function")
	}
	e := s.alloc(t, fn)
	s.push(e)
	return Timer{e: e, gen: e.gen}
}

// After schedules fn to run d after the current virtual time. Negative
// durations are clamped to zero.
func (s *Simulator) After(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now.Add(d), fn)
}

// Pending reports the number of live events waiting in the queue. Cancelled
// events are removed from the queue immediately, so this count is exact —
// drain checks can rely on it.
func (s *Simulator) Pending() int { return len(s.events) }

// Step fires the next pending event, advancing virtual time to its
// timestamp. It reports false when no events remain.
func (s *Simulator) Step() bool {
	if len(s.events) == 0 {
		return false
	}
	e := s.popMin()
	if e.when < s.now {
		panic("des: event queue yielded an event from the past")
	}
	s.now = e.when
	s.steps++
	if s.maxStep != 0 && s.steps > s.maxStep {
		panic(fmt.Sprintf("des: exceeded max steps %d at t=%v (livelock?)", s.maxStep, s.now))
	}
	fn := e.fn
	// Release before running fn: the generation bump makes any Timer for
	// this event stale (so a self-cancel inside fn is a no-op, matching
	// the fired-event semantics), and fn may immediately recycle the
	// struct for the events it schedules.
	s.release(e)
	fn()
	return true
}

// Run fires events until the queue drains or Stop is called.
func (s *Simulator) Run() {
	s.stopped = false
	for !s.stopped && s.Step() {
	}
}

// RunUntil fires events with timestamps not after t, then sets the clock to
// t (if it is ahead of the last event). It stops early if Stop is called.
func (s *Simulator) RunUntil(t Time) {
	s.stopped = false
	for !s.stopped {
		if len(s.events) == 0 || s.events[0].when > t {
			break
		}
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// RunFor advances the simulation by d of virtual time.
func (s *Simulator) RunFor(d time.Duration) { s.RunUntil(s.now.Add(d)) }

// Stop makes the innermost Run/RunUntil return after the current event
// handler completes. It may be called from inside an event handler.
func (s *Simulator) Stop() { s.stopped = true }

// NextEvent returns the timestamp of the next pending event, if any — used
// by real-time drivers to sleep precisely.
func (s *Simulator) NextEvent() (Time, bool) {
	if len(s.events) == 0 {
		return 0, false
	}
	return s.events[0].when, true
}

// alloc takes an Event from the free list (or allocates one) and stamps it
// with a fresh sequence number.
func (s *Simulator) alloc(t Time, fn func()) *Event {
	var e *Event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		e = &Event{sim: s}
	}
	e.when, e.seq, e.fn = t, s.seq, fn
	s.seq++
	return e
}

// release invalidates all outstanding Timers for e and returns it to the
// free list. e must already be out of the queue.
func (s *Simulator) release(e *Event) {
	e.gen++
	e.fn = nil // drop the closure so it can be collected
	s.free = append(s.free, e)
}

// Heap operations on the concrete []*Event slice. Hand-rolled (rather than
// container/heap) so Push/Pop do not box every event into an interface
// value — this is the simulation's innermost loop.

func (s *Simulator) less(i, j int) bool {
	a, b := s.events[i], s.events[j]
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

func (s *Simulator) swap(i, j int) {
	h := s.events
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (s *Simulator) push(e *Event) {
	e.index = len(s.events)
	s.events = append(s.events, e)
	s.siftUp(e.index)
}

func (s *Simulator) popMin() *Event {
	h := s.events
	e := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[0].index = 0
	h[last] = nil
	s.events = h[:last]
	if last > 1 {
		s.siftDown(0)
	}
	e.index = -1
	return e
}

// remove deletes a queued event from anywhere in the heap in O(log n).
func (s *Simulator) remove(e *Event) {
	i := e.index
	h := s.events
	last := len(h) - 1
	if i != last {
		h[i] = h[last]
		h[i].index = i
	}
	h[last] = nil
	s.events = h[:last]
	if i != last {
		if !s.siftDown(i) {
			s.siftUp(i)
		}
	}
	e.index = -1
}

func (s *Simulator) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s.swap(i, parent)
		i = parent
	}
}

// siftDown restores the heap below i and reports whether anything moved.
func (s *Simulator) siftDown(i int) bool {
	moved := false
	n := len(s.events)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && s.less(r, l) {
			m = r
		}
		if !s.less(m, i) {
			break
		}
		s.swap(m, i)
		i = m
		moved = true
	}
	return moved
}
