// Package des implements a deterministic discrete-event simulator.
//
// The simulator maintains a virtual clock and a priority queue of timed
// events. Events scheduled for the same virtual instant fire in the order
// they were scheduled (FIFO within a timestamp), which makes every run with
// the same seed and the same schedule byte-for-byte reproducible. All of the
// simulated substrates in this repository — the network, the agent platform,
// the replicated servers — are driven by a single Simulator, so an entire
// distributed execution is a deterministic, single-threaded function of its
// inputs.
//
// Virtual time is expressed as a Time (nanoseconds since the start of the
// simulation). Durations use the standard time.Duration so call sites read
// naturally (sim.After(3*time.Millisecond, fn)). No wall-clock time is ever
// consulted.
package des

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is a virtual timestamp: nanoseconds since the simulation epoch.
type Time int64

// Duration converts a virtual timestamp to the duration since the epoch.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Add returns the timestamp d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration between two timestamps.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// String formats the timestamp as a duration since the epoch.
func (t Time) String() string { return time.Duration(t).String() }

// Event is a scheduled callback. Events are created through Simulator.At and
// Simulator.After and may be cancelled before they fire.
type Event struct {
	when     Time
	seq      uint64 // tie-break: FIFO among equal timestamps
	fn       func()
	index    int // heap index, -1 once removed
	canceled bool
}

// When reports the virtual time at which the event fires (or would have
// fired, if cancelled).
func (e *Event) When() Time { return e.when }

// Cancel prevents the event from firing. Cancelling an event that already
// fired or was already cancelled is a no-op. Cancel reports whether the
// event was still pending.
func (e *Event) Cancel() bool {
	if e == nil || e.canceled || e.index < 0 {
		return false
	}
	e.canceled = true
	return true
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Simulator is a deterministic discrete-event engine. It is not safe for
// concurrent use: all event handlers run on the caller's goroutine, one at a
// time, which is precisely what makes runs reproducible.
type Simulator struct {
	now     Time
	events  eventHeap
	seq     uint64
	rng     *rand.Rand
	steps   uint64
	maxStep uint64 // safety valve; 0 = unlimited
	stopped bool
}

// New returns a simulator whose random source is seeded with seed. Two
// simulators created with the same seed and fed the same schedule produce
// identical executions.
func New(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Rand returns the simulator's seeded random source. All randomness in a
// simulation must come from this source to preserve determinism.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Steps reports how many events have fired so far.
func (s *Simulator) Steps() uint64 { return s.steps }

// SetMaxSteps installs a safety limit on the number of events a Run may
// process; 0 removes the limit. Exceeding the limit panics, which turns an
// accidental livelock in protocol code into a loud test failure instead of a
// hung test binary.
func (s *Simulator) SetMaxSteps(n uint64) { s.maxStep = n }

// At schedules fn to run at virtual time t. Scheduling in the past (t before
// Now) panics: a simulated component can never affect its own past.
func (s *Simulator) At(t Time, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("des: scheduling event at %v before now %v", t, s.now))
	}
	if fn == nil {
		panic("des: nil event function")
	}
	e := &Event{when: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, e)
	return e
}

// After schedules fn to run d after the current virtual time. Negative
// durations are clamped to zero.
func (s *Simulator) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now.Add(d), fn)
}

// Pending reports the number of events waiting in the queue, including
// cancelled events that have not been reaped yet.
func (s *Simulator) Pending() int { return len(s.events) }

// Step fires the next pending event, advancing virtual time to its
// timestamp. It reports false when no events remain.
func (s *Simulator) Step() bool {
	for len(s.events) > 0 {
		e := heap.Pop(&s.events).(*Event)
		if e.canceled {
			continue
		}
		if e.when < s.now {
			panic("des: event queue yielded an event from the past")
		}
		s.now = e.when
		s.steps++
		if s.maxStep != 0 && s.steps > s.maxStep {
			panic(fmt.Sprintf("des: exceeded max steps %d at t=%v (livelock?)", s.maxStep, s.now))
		}
		e.fn()
		return true
	}
	return false
}

// Run fires events until the queue drains or Stop is called.
func (s *Simulator) Run() {
	s.stopped = false
	for !s.stopped && s.Step() {
	}
}

// RunUntil fires events with timestamps not after t, then sets the clock to
// t (if it is ahead of the last event). It stops early if Stop is called.
func (s *Simulator) RunUntil(t Time) {
	s.stopped = false
	for !s.stopped {
		if len(s.events) == 0 {
			break
		}
		next := s.peek()
		if next == nil {
			break
		}
		if next.when > t {
			break
		}
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// RunFor advances the simulation by d of virtual time.
func (s *Simulator) RunFor(d time.Duration) { s.RunUntil(s.now.Add(d)) }

// Stop makes the innermost Run/RunUntil return after the current event
// handler completes. It may be called from inside an event handler.
func (s *Simulator) Stop() { s.stopped = true }

// NextEvent returns the timestamp of the next pending (non-cancelled)
// event, if any — used by real-time drivers to sleep precisely.
func (s *Simulator) NextEvent() (Time, bool) {
	e := s.peek()
	if e == nil {
		return 0, false
	}
	return e.when, true
}

// peek returns the next non-cancelled event without firing it, reaping
// cancelled events along the way.
func (s *Simulator) peek() *Event {
	for len(s.events) > 0 {
		e := s.events[0]
		if !e.canceled {
			return e
		}
		heap.Pop(&s.events)
	}
	return nil
}
