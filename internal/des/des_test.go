package des

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEmptyRun(t *testing.T) {
	s := New(1)
	s.Run()
	if s.Now() != 0 {
		t.Fatalf("Now = %v, want 0", s.Now())
	}
	if s.Steps() != 0 {
		t.Fatalf("Steps = %d, want 0", s.Steps())
	}
}

func TestOrderingByTime(t *testing.T) {
	s := New(1)
	var got []int
	s.After(30*time.Millisecond, func() { got = append(got, 3) })
	s.After(10*time.Millisecond, func() { got = append(got, 1) })
	s.After(20*time.Millisecond, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestFIFOWithinSameInstant(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.After(time.Millisecond, func() { got = append(got, i) })
	}
	s.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("FIFO violated: got %v", got)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	s := New(1)
	var at Time
	s.After(42*time.Millisecond, func() { at = s.Now() })
	s.Run()
	if at.Duration() != 42*time.Millisecond {
		t.Fatalf("event fired at %v, want 42ms", at)
	}
	if s.Now() != at {
		t.Fatalf("clock %v, want %v", s.Now(), at)
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New(1)
	var fired []time.Duration
	s.After(10*time.Millisecond, func() {
		fired = append(fired, s.Now().Duration())
		s.After(5*time.Millisecond, func() {
			fired = append(fired, s.Now().Duration())
		})
	})
	s.Run()
	if len(fired) != 2 || fired[0] != 10*time.Millisecond || fired[1] != 15*time.Millisecond {
		t.Fatalf("fired = %v", fired)
	}
}

func TestCancel(t *testing.T) {
	s := New(1)
	fired := false
	e := s.After(time.Millisecond, func() { fired = true })
	if !e.Cancel() {
		t.Fatal("Cancel reported not pending")
	}
	if e.Cancel() {
		t.Fatal("second Cancel should report false")
	}
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelFiredEvent(t *testing.T) {
	s := New(1)
	e := s.After(0, func() {})
	s.Run()
	if e.Cancel() {
		t.Fatal("Cancel of fired event should report false")
	}
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	var count int
	for i := 1; i <= 5; i++ {
		s.After(time.Duration(i)*time.Millisecond, func() { count++ })
	}
	s.RunUntil(Time(3 * time.Millisecond))
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if s.Now().Duration() != 3*time.Millisecond {
		t.Fatalf("clock = %v, want 3ms", s.Now())
	}
	s.Run()
	if count != 5 {
		t.Fatalf("count after Run = %d, want 5", count)
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	s := New(1)
	s.RunUntil(Time(time.Second))
	if s.Now().Duration() != time.Second {
		t.Fatalf("idle clock = %v, want 1s", s.Now())
	}
}

func TestRunFor(t *testing.T) {
	s := New(1)
	fired := 0
	s.After(time.Millisecond, func() { fired++ })
	s.After(10*time.Millisecond, func() { fired++ })
	s.RunFor(5 * time.Millisecond)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
}

func TestStopFromHandler(t *testing.T) {
	s := New(1)
	var count int
	for i := 0; i < 10; i++ {
		s.After(time.Duration(i)*time.Millisecond, func() {
			count++
			if count == 4 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 4 {
		t.Fatalf("count = %d, want 4", count)
	}
	s.Run() // resumes
	if count != 10 {
		t.Fatalf("count after resume = %d, want 10", count)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New(1)
	s.After(10*time.Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in past")
			}
		}()
		s.At(Time(1*time.Millisecond), func() {})
	})
	s.Run()
}

func TestNilFuncPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for nil fn")
		}
	}()
	New(1).After(0, nil)
}

func TestMaxStepsPanics(t *testing.T) {
	s := New(1)
	s.SetMaxSteps(100)
	var loop func()
	loop = func() { s.After(time.Millisecond, loop) }
	s.After(0, loop)
	defer func() {
		if recover() == nil {
			t.Error("expected livelock panic")
		}
	}()
	s.Run()
}

func TestNegativeAfterClamped(t *testing.T) {
	s := New(1)
	fired := false
	s.After(-time.Second, func() { fired = true })
	s.Run()
	if !fired || s.Now() != 0 {
		t.Fatalf("fired=%v now=%v", fired, s.Now())
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	run := func(seed int64) []int64 {
		s := New(seed)
		var trace []int64
		var spawn func(depth int)
		spawn = func(depth int) {
			trace = append(trace, int64(s.Now()))
			if depth == 0 {
				return
			}
			n := s.Rand().Intn(3) + 1
			for i := 0; i < n; i++ {
				d := time.Duration(s.Rand().Intn(1000)) * time.Microsecond
				s.After(d, func() { spawn(depth - 1) })
			}
		}
		s.After(0, func() { spawn(6) })
		s.Run()
		return trace
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces (suspicious)")
	}
}

// Property: for any batch of scheduled delays, events fire in nondecreasing
// time order and the clock ends at the max delay.
func TestPropertyMonotonicFiring(t *testing.T) {
	f := func(delays []uint16) bool {
		s := New(7)
		var fired []Time
		var max time.Duration
		for _, d := range delays {
			dd := time.Duration(d) * time.Microsecond
			if dd > max {
				max = dd
			}
			s.After(dd, func() { fired = append(fired, s.Now()) })
		}
		s.Run()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(delays) == 0 || s.Now().Duration() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeHelpers(t *testing.T) {
	x := Time(time.Second)
	if x.Add(time.Second) != Time(2*time.Second) {
		t.Fatal("Add")
	}
	if x.Sub(Time(time.Millisecond)) != time.Second-time.Millisecond {
		t.Fatal("Sub")
	}
	if x.String() != "1s" {
		t.Fatalf("String = %q", x.String())
	}
}

func TestEventWhenAndNextEvent(t *testing.T) {
	s := New(1)
	if _, ok := s.NextEvent(); ok {
		t.Fatal("NextEvent on empty queue")
	}
	e := s.After(7*time.Millisecond, func() {})
	if e.When().Duration() != 7*time.Millisecond {
		t.Fatalf("When = %v", e.When())
	}
	if next, ok := s.NextEvent(); !ok || next != e.When() {
		t.Fatalf("NextEvent = %v %v", next, ok)
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d", s.Pending())
	}
	// A cancelled event is reaped immediately, so NextEvent and Pending
	// see only live events.
	e.Cancel()
	s.After(9*time.Millisecond, func() {})
	if next, ok := s.NextEvent(); !ok || next.Duration() != 9*time.Millisecond {
		t.Fatalf("NextEvent after cancel = %v %v", next, ok)
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending after cancel = %d, want 1", s.Pending())
	}
}

func BenchmarkScheduleAndFire(b *testing.B) {
	s := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.After(time.Microsecond, func() {})
		s.Step()
	}
}

func BenchmarkDeepEventQueue(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := New(1)
		for j := 0; j < 1000; j++ {
			s.After(time.Duration(j)*time.Microsecond, func() {})
		}
		s.Run()
	}
}
