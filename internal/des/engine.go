// The simulator doubles as the deterministic implementation of the
// runtime.Engine seam: AfterFunc/Sleep/Wait are thin views over the
// existing scheduling primitives, so protocol code written against the
// seam executes identically to code that called After/RunFor directly.

package des

import (
	"time"

	"repro/internal/runtime"
)

var _ runtime.Engine = (*Simulator)(nil)

// AfterFunc schedules fn to run d after the current virtual time and
// returns the portable timer handle. It is After behind the runtime.Clock
// interface; des.Timer is the handle, so cancellation semantics (stale
// handles inert, cancel removes the event immediately) are unchanged.
func (s *Simulator) AfterFunc(d time.Duration, fn func()) runtime.Timer {
	return runtime.MakeTimer(s.After(d, fn))
}

// Sleep advances the simulation by d of virtual time, firing everything
// that comes due — RunFor behind the runtime.Engine interface.
func (s *Simulator) Sleep(d time.Duration) { s.RunFor(d) }

// Wait steps the simulation until done() reports true. It fails with
// runtime.ErrDeadline once virtual time passes d from the start of the
// wait, and with runtime.ErrStalled if the event queue drains first — a
// stall means the condition can never become true, which under this engine
// is a deadlock diagnosis, not a timeout.
func (s *Simulator) Wait(d time.Duration, done func() bool) error {
	deadline := s.now.Add(d)
	for !done() {
		if s.now > deadline {
			return runtime.ErrDeadline
		}
		if !s.Step() {
			return runtime.ErrStalled
		}
	}
	return nil
}
