package durable

import (
	"fmt"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/agent"
	"repro/internal/disk"
	"repro/internal/runtime"
	"repro/internal/store"
	"repro/internal/wal"
)

func upd(i int) store.Update {
	return store.Update{
		TxnID: fmt.Sprintf("txn-%03d", i),
		Key:   fmt.Sprintf("key-%d", i%3),
		Data:  fmt.Sprintf("value-%03d", i),
		Seq:   uint64(i),
		Stamp: int64(1000 * i),
	}
}

func aid(n, seq int) agent.ID {
	return agent.ID{Home: runtime.NodeID(n), Born: int64(n * 17), Seq: uint64(seq)}
}

func TestJournalRoundTrip(t *testing.T) {
	m := disk.NewMem()
	j, st, err := Open(m, Options{Policy: wal.PolicyCommit})
	if err != nil || st != nil {
		t.Fatalf("fresh Open = %v, state %v", err, st)
	}
	// Drive a store through the journal the way a replica does.
	s := store.New()
	s.SetJournal(j)
	for i := 1; i <= 5; i++ {
		if err := s.ApplyCommitted(upd(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Prepare(upd(6)); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(upd(6).TxnID); err != nil {
		t.Fatal(err)
	}
	if err := s.Prepare(upd(7)); err != nil {
		t.Fatal(err)
	}
	s.Abort(upd(7).TxnID)
	if err := s.Prepare(upd(7)); err != nil {
		t.Fatal(err) // staged tentative, never committed
	}
	ls := LockState{
		Epoch: 2, LLVersion: 9, HeadVersion: 7,
		LL:    []agent.ID{aid(1, 1), aid(2, 1)},
		Grant: aid(1, 1), GrantAttempt: 3,
	}
	j.LogLock(ls, true)
	j.LogGone(aid(3, 1))
	j.NextSeq(1)
	j.Seen(4, 11)
	j.Seen(4, 12)
	j.Close()

	j2, st2, err := Open(m, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	if st2 == nil {
		t.Fatal("reopen returned nil state")
	}
	if got := len(st2.Store.Log); got != 6 {
		t.Fatalf("replayed %d committed updates, want 6", got)
	}
	for i, u := range st2.Store.Log {
		if u != upd(i+1) {
			t.Fatalf("log[%d] = %+v, want %+v", i, u, upd(i+1))
		}
	}
	if len(st2.Store.Tentative) != 1 || st2.Store.Tentative[0] != upd(7) {
		t.Fatalf("tentative = %+v, want [upd(7)]", st2.Store.Tentative)
	}
	if !reflect.DeepEqual(st2.Lock, ls) {
		t.Fatalf("lock = %+v, want %+v", st2.Lock, ls)
	}
	if len(st2.Gone) != 1 || st2.Gone[0] != aid(3, 1) {
		t.Fatalf("gone = %+v", st2.Gone)
	}
	if st2.RelNextSeq != relNextStride {
		t.Fatalf("RelNextSeq = %d, want the first stride %d", st2.RelNextSeq, relNextStride)
	}
	if !reflect.DeepEqual(st2.RelSeen[4], []uint64{11, 12}) {
		t.Fatalf("RelSeen[4] = %v", st2.RelSeen[4])
	}
}

func TestCompactionSupersedesRecords(t *testing.T) {
	m := disk.NewMem()
	j, _, err := Open(m, Options{Policy: wal.PolicyAlways, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	s := store.New()
	s.SetJournal(j)
	for i := 1; i <= 10; i++ {
		s.ApplyCommitted(upd(i))
	}
	j.AddSource(func(ds *State) {
		ds.Store = s.State()
		ds.Lock = LockState{Epoch: 1}
	})
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	for i := 11; i <= 12; i++ {
		s.ApplyCommitted(upd(i))
	}
	j.Close()

	_, st, err := Open(m, Options{})
	if err != nil || st == nil {
		t.Fatalf("reopen: %v, %v", err, st)
	}
	if len(st.Store.Log) != 12 || st.Lock.Epoch != 1 {
		t.Fatalf("after compaction: %d updates, epoch %d", len(st.Store.Log), st.Lock.Epoch)
	}
	rebuilt := store.FromState(st.Store)
	if rebuilt.LastSeq() != 12 {
		t.Fatalf("rebuilt LastSeq = %d", rebuilt.LastSeq())
	}
}

func TestMaybeCompactTriggersAtThreshold(t *testing.T) {
	m := disk.NewMem()
	j, _, err := Open(m, Options{Policy: wal.PolicyNone, CompactEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	s := store.New()
	s.SetJournal(j)
	j.AddSource(func(ds *State) { ds.Store = s.State() })
	for i := 1; i <= 20; i++ {
		s.ApplyCommitted(upd(i))
		j.MaybeCompact()
	}
	if snaps := j.Stats().Snapshots; snaps < 2 {
		t.Fatalf("Snapshots = %d, want >= 2 at CompactEvery=8 over 20 records", snaps)
	}
	j.Close()
	_, st, err := Open(m, Options{})
	if err != nil || len(st.Store.Log) != 20 {
		t.Fatalf("reopen: %v, %d updates", err, len(st.Store.Log))
	}
}

func TestRelNextStrideNeverReusesSequence(t *testing.T) {
	// Crash after any number of sends: the restored counter must be at
	// least the highest sequence number ever handed out.
	for _, sends := range []int{1, relNextStride - 1, relNextStride, relNextStride + 1, 3 * relNextStride} {
		m := disk.NewMem()
		j, _, _ := Open(m, Options{Policy: wal.PolicyAlways})
		for seq := 1; seq <= sends; seq++ {
			j.NextSeq(uint64(seq))
		}
		j.Kill() // crash: PolicyAlways synced every record
		_, st, err := Open(m, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if st == nil || st.RelNextSeq < uint64(sends) {
			t.Fatalf("after %d sends, restored RelNextSeq = %v", sends, st)
		}
	}
}

func TestNextSeqIsDurableBeforeTheSend(t *testing.T) {
	// recRelNext is a commit barrier: under the default PolicyCommit the
	// high-water mark must be on disk before the stride's first message
	// leaves the node. A crash right after NextSeq — with no other commit in
	// between — must still restore the full stride, or the restarted node
	// would reuse sequence numbers its peers' dedup tables silently swallow.
	m := disk.NewMem()
	j, _, _ := Open(m, Options{Policy: wal.PolicyCommit})
	j.NextSeq(1)
	j.Kill()
	m.Crash()
	_, st, err := Open(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st == nil || st.RelNextSeq != relNextStride {
		t.Fatalf("after crash, restored state = %+v, want RelNextSeq %d", st, relNextStride)
	}
}

func TestSnapshotKeepsSendCounterHighWater(t *testing.T) {
	// Sends between a snapshot and the journaled high-water write no
	// records; the snapshot must carry the high-water so they still cannot
	// be reused after a crash.
	m := disk.NewMem()
	j, _, _ := Open(m, Options{Policy: wal.PolicyAlways})
	j.NextSeq(1)                                       // journals high-water = relNextStride
	j.AddSource(func(ds *State) { ds.RelNextSeq = 1 }) // exact counter only
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	j.Kill()
	_, st, err := Open(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.RelNextSeq != relNextStride {
		t.Fatalf("RelNextSeq = %d, want high-water %d", st.RelNextSeq, relNextStride)
	}
}

func TestReplayFailsOnForeignRecord(t *testing.T) {
	m := disk.NewMem()
	l, _, _, _ := wal.Open(m, wal.Options{Policy: wal.PolicyAlways})
	l.Append(wal.Record{Type: 200, Data: []byte("not ours")}, true)
	l.Close()
	if _, _, err := Open(m, Options{}); err == nil {
		t.Fatal("Open replayed a record of unknown type")
	}
}

// TestQuickCrashPointReplaysCommitPrefix is the paper-facing durability
// property (ISSUE satellite): take a valid journal recording a committed
// update sequence, truncate its WAL at ANY byte (a simulated crash point
// under PolicyNone — the worst case), and the replayed store state must be
// a prefix of the committed sequence. Never a gap, never an invented
// update, never a replay error.
func TestQuickCrashPointReplaysCommitPrefix(t *testing.T) {
	const commits = 30
	segName := func(m *disk.Mem) string {
		names, _ := m.List()
		for _, n := range names {
			if len(n) > 4 && n[:4] == "wal-" {
				return n
			}
		}
		t.Fatal("no segment file")
		return ""
	}
	build := func() *disk.Mem {
		m := disk.NewMem()
		j, _, _ := Open(m, Options{Policy: wal.PolicyNone, CompactEvery: -1})
		s := store.New()
		s.SetJournal(j)
		for i := 1; i <= commits; i++ {
			if err := s.Prepare(upd(i)); err != nil {
				t.Fatal(err)
			}
			if err := s.Commit(upd(i).TxnID); err != nil {
				t.Fatal(err)
			}
		}
		j.Sync() // make all bytes visible to Truncate-after-Crash
		j.Kill()
		return m
	}
	prop := func(cut uint16) bool {
		m := build()
		seg := segName(m)
		at := int(cut) % (m.Size(seg) + 1)
		if err := m.Truncate(seg, at); err != nil {
			return false
		}
		_, st, err := Open(m, Options{})
		if err != nil {
			return false
		}
		if st == nil {
			return true // truncated to nothing: the empty prefix
		}
		rebuilt := store.FromState(st.Store)
		last := rebuilt.LastSeq()
		if last > commits {
			return false
		}
		log := rebuilt.Log()
		if uint64(len(log)) != last {
			return false
		}
		for i, u := range log {
			if u != upd(i+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodingRejectsTrailingBytes(t *testing.T) {
	b := encodeUpdate(upd(3))
	if _, err := decodeUpdate(append(b, 0xAA)); err == nil {
		t.Fatal("decodeUpdate accepted trailing bytes")
	}
	if _, err := decodeUpdate(b[:len(b)-1]); err == nil {
		t.Fatal("decodeUpdate accepted a short buffer")
	}
}

func TestStateEncodingDeterministic(t *testing.T) {
	st := &State{
		Store: store.State{Log: []store.Update{upd(1), upd(2)}},
		Lock:  LockState{Epoch: 3, LL: []agent.ID{aid(2, 4)}},
		Gone:  []agent.ID{aid(1, 1)},
		RelSeen: map[runtime.NodeID][]uint64{
			5: {9, 2, 7},
			2: {1},
		},
		RelNextSeq: 64,
	}
	a := encodeState(st)
	b := encodeState(st)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("encodeState not deterministic")
	}
	got, err := decodeState(a)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.RelSeen[5], []uint64{2, 7, 9}) {
		t.Fatalf("RelSeen sorted = %v", got.RelSeen[5])
	}
	if got.Lock.Epoch != 3 || len(got.Store.Log) != 2 || got.RelNextSeq != 64 {
		t.Fatalf("round trip: %+v", got)
	}
}
