// Package durable gives one replica a persistent memory: every mutation of
// its store, its locking state, and its reliable-delivery endpoint is
// journaled to a write-ahead log (internal/wal) on stable storage
// (internal/disk), and Open rebuilds the exact pre-crash state from the
// newest snapshot plus the journaled suffix.
//
// The paper's recovery story (§3.1) assumes a replica that comes back
// remembers what it committed and pulls the rest from its peers; this
// package supplies the first half, and the replica's existing anti-entropy
// sync supplies the second. The record vocabulary is deliberately the
// replica's mutation vocabulary — one record per validated state change,
// in execution order — so replay is a pure re-execution and DESIGN.md
// invariant 11 ("a replica never forgets a COMMIT it acknowledged while
// its fsync policy held") falls out of the wal's commit barriers.
//
// Records are hand-framed (no gob) for two reasons: a committed update is
// ~40 bytes instead of ~300, and the encoding is deterministic, which
// keeps simulated durability runs byte-for-byte reproducible.
package durable

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"repro/internal/agent"
	"repro/internal/disk"
	"repro/internal/runtime"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/wal"
)

// Record types. Values are part of the on-disk format: never renumber.
const (
	recApply     byte = 1 // store.Update applied committed (commit barrier)
	recPrepare   byte = 2 // store.Update staged tentatively
	recCommitTxn byte = 3 // tentative transaction finalized (commit barrier)
	recAbortTxn  byte = 4 // tentative transaction discarded
	recLock      byte = 5 // full locking-state snapshot (LL, grant, versions)
	recGone      byte = 6 // agent added to the Updated List / gone set
	recRelNext   byte = 7 // reliable-delivery send-sequence high-water mark
	recRelSeen   byte = 8 // reliable-delivery first-seen frame (dedup state)
	recLockS     byte = 9 // locking-state snapshot of a shard > 0 (shard-prefixed)
)

// LockState is the serializable locking state of a replica: the Locking
// List and grant that Algorithm 2 mutates, plus the monotone counters that
// keep stale-evidence checks sound across restarts.
type LockState struct {
	Epoch        uint64
	LLVersion    uint64
	HeadVersion  uint64
	LL           []agent.ID
	Grant        agent.ID
	GrantAttempt int
}

// State is everything a recovering replica restores: the data store, the
// locking state, the gone set (Updated List), and the reliable-delivery
// endpoint state (send counter and per-sender dedup sets).
type State struct {
	Store      store.State
	Lock       LockState
	Gone       []agent.ID
	RelNextSeq uint64
	RelSeen    map[runtime.NodeID][]uint64
	// Sharded replicas (shard-isolation invariant: every shard journals
	// and restores independently) carry one extra store/lock pair per
	// shard beyond the first: index i holds shard i+1. Empty on unsharded
	// replicas, keeping their snapshots byte-identical to the pre-sharding
	// format.
	ExtraStores []store.State
	ExtraLocks  []LockState
}

// BirthFloor returns the largest timestamp the state remembers — agent
// birth times in the lock and gone records, commit stamps in the store.
// A recovering node feeds this to agent.Platform.AdvanceBirth: engines
// restart their clocks at zero, and an agent ID minted below the floor
// could collide with a persisted gone entry and be refused forever.
func (st *State) BirthFloor() int64 {
	var floor int64
	bump := func(v int64) {
		if v > floor {
			floor = v
		}
	}
	for _, id := range st.Gone {
		bump(id.Born)
	}
	locks := append([]LockState{st.Lock}, st.ExtraLocks...)
	for _, ls := range locks {
		for _, id := range ls.LL {
			bump(id.Born)
		}
		bump(ls.Grant.Born)
	}
	stores := append([]store.State{st.Store}, st.ExtraStores...)
	for _, ss := range stores {
		for _, u := range ss.Log {
			bump(u.Stamp)
		}
		for _, u := range ss.Tentative {
			bump(u.Stamp)
		}
	}
	return floor
}

// relNextStride is how coarsely the send counter is journaled: one record
// every stride sends, restored rounded up a full stride. Sequence numbers
// only need to be monotone per sender, so over-approximating after a crash
// is free, and the stride keeps the counter off the per-send hot path.
const relNextStride = 64

// Options tunes a journal.
type Options struct {
	// Policy is the wal fsync policy (default wal.PolicyCommit).
	Policy wal.Policy
	// SegmentBytes is the wal segment size (default 1 MiB).
	SegmentBytes int
	// CompactEvery installs a fresh snapshot and drops the replayed log
	// every this many records (default 4096; negative disables).
	CompactEvery int
	// Shards is the replica's shard count (default 1). Replay routes each
	// store record to its key's shard, so the journal stays a single
	// ordered log while the shards restore independently.
	Shards int
	// GroupCommitDelay enables WAL group commit (see wal.Options): commit
	// barriers park for up to this long and one fsync covers all of them.
	// Only effective once OnBarrier hooks are registered — without a way to
	// dam the node's outbound messages, deferring the fsync would break
	// invariant 11.
	GroupCommitDelay time.Duration
	// Scheduler overrides the group-commit flush scheduler (tests).
	Scheduler func(d time.Duration, fn func())
	// OnSync forwards to wal.Options.OnSync: it observes each successful
	// segment fsync's wall-clock duration for the ops plane.
	OnSync func(d time.Duration)
}

func (o Options) withDefaults() Options {
	if o.CompactEvery == 0 {
		o.CompactEvery = 4096
	}
	if o.Shards < 1 {
		o.Shards = 1
	}
	return o
}

// Journal is one replica's open durability log. It implements
// store.Journal and reliable.Journal, and the replica logs its locking
// mutations through LogLock/LogGone. Like every protocol-layer object it
// is single-threaded: its owner drives it from the engine's execution
// context.
//
// A stable-storage failure is fail-stop by design: a replica that cannot
// journal must not keep acknowledging, so every logging method panics on
// I/O error rather than silently degrading to volatility.
type Journal struct {
	log       *wal.Log
	opts      Options
	sources   []func(*State)
	sinceSnap int
	relNextHi uint64 // highest send counter journaled so far

	// Group-commit hooks (OnBarrier): hold runs synchronously when a commit
	// barrier parks instead of fsyncing; release runs once the covering
	// fsync lands (from the flush goroutine — the registrar marshals it
	// back onto the engine's execution context).
	hold    func()
	release func()
}

// Open replays the journal on b and returns the recovered state, or a nil
// state when the backend holds no history (a fresh data dir).
func Open(b disk.Backend, opts Options) (*Journal, *State, error) {
	opts = opts.withDefaults()
	log, snap, records, err := wal.Open(b, wal.Options{
		Policy:           opts.Policy,
		SegmentBytes:     opts.SegmentBytes,
		GroupCommitDelay: opts.GroupCommitDelay,
		Scheduler:        opts.Scheduler,
		OnSync:           opts.OnSync,
	})
	if err != nil {
		return nil, nil, err
	}
	j := &Journal{log: log, opts: opts, sinceSnap: len(records)}
	if snap == nil && len(records) == 0 {
		return j, nil, nil
	}
	st, err := replay(snap, records, opts.Shards)
	if err != nil {
		return nil, nil, err
	}
	j.relNextHi = st.RelNextSeq
	return j, st, nil
}

// replay rebuilds the replica state from a snapshot (nil = empty) and the
// records journaled after it, in order. Records were only ever written for
// operations that succeeded, so any replay error is corruption. Store
// records route to their key's shard; lock records carry their shard
// explicitly (shard 0 uses the legacy record type, so unsharded logs are
// unchanged on disk).
func replay(snap []byte, records []wal.Record, shards int) (*State, error) {
	st := &State{RelSeen: make(map[runtime.NodeID][]uint64)}
	if snap != nil {
		s, err := decodeState(snap)
		if err != nil {
			return nil, err
		}
		st = s
	}
	if shards > 1 {
		for len(st.ExtraStores) < shards-1 {
			st.ExtraStores = append(st.ExtraStores, store.State{})
		}
		for len(st.ExtraLocks) < shards-1 {
			st.ExtraLocks = append(st.ExtraLocks, LockState{})
		}
	}
	mems := make([]*store.Store, shards)
	mems[0] = store.FromState(st.Store)
	for i := 1; i < shards; i++ {
		mems[i] = store.FromState(st.ExtraStores[i-1])
	}
	seen := make(map[runtime.NodeID]map[uint64]bool, len(st.RelSeen))
	for from, seqs := range st.RelSeen {
		seen[from] = make(map[uint64]bool, len(seqs))
		for _, q := range seqs {
			seen[from][q] = true
		}
	}
	gone := make(map[agent.ID]bool, len(st.Gone))
	for _, id := range st.Gone {
		gone[id] = true
	}
	for i, rec := range records {
		var err error
		switch rec.Type {
		case recApply:
			var u store.Update
			if u, err = decodeUpdate(rec.Data); err == nil {
				err = mems[shard.Of(u.Key, shards)].ApplyCommitted(u)
			}
		case recPrepare:
			var u store.Update
			if u, err = decodeUpdate(rec.Data); err == nil {
				err = mems[shard.Of(u.Key, shards)].Prepare(u)
			}
		case recCommitTxn:
			var txn string
			if txn, err = decodeString(rec.Data); err == nil {
				// The record does not name a shard (its encoding predates
				// sharding); the tentative transaction lives on exactly one.
				err = store.ErrUnknownTxn
				for _, mem := range mems {
					if cErr := mem.Commit(txn); cErr != store.ErrUnknownTxn {
						err = cErr
						break
					}
				}
			}
		case recAbortTxn:
			var txn string
			if txn, err = decodeString(rec.Data); err == nil {
				for _, mem := range mems {
					mem.Abort(txn)
				}
			}
		case recLock:
			st.Lock, err = decodeLock(rec.Data)
		case recLockS:
			var shrd int
			var ls LockState
			if shrd, ls, err = decodeLockShard(rec.Data); err == nil {
				switch {
				case shrd == 0:
					st.Lock = ls
				case shrd-1 < len(st.ExtraLocks):
					st.ExtraLocks[shrd-1] = ls
				default:
					err = fmt.Errorf("lock record for shard %d beyond %d shards", shrd, shards)
				}
			}
		case recGone:
			var id agent.ID
			if id, err = decodeAgentID(rec.Data); err == nil && !gone[id] {
				gone[id] = true
				st.Gone = append(st.Gone, id)
			}
		case recRelNext:
			var n uint64
			if n, err = decodeUvarint(rec.Data); err == nil && n > st.RelNextSeq {
				st.RelNextSeq = n
			}
		case recRelSeen:
			var from runtime.NodeID
			var seq uint64
			if from, seq, err = decodeRelSeen(rec.Data); err == nil && !seen[from][seq] {
				if seen[from] == nil {
					seen[from] = make(map[uint64]bool)
				}
				seen[from][seq] = true
				st.RelSeen[from] = append(st.RelSeen[from], seq)
			}
		default:
			err = fmt.Errorf("unknown record type %d", rec.Type)
		}
		if err != nil {
			return nil, fmt.Errorf("durable: replaying record %d (type %d): %w", i, rec.Type, err)
		}
	}
	st.Store = mems[0].State()
	for i := 1; i < shards; i++ {
		st.ExtraStores[i-1] = mems[i].State()
	}
	return st, nil
}

// AddSource registers a contributor to compaction snapshots. The replica
// contributes its store/locking state, the cluster contributes the
// reliable-delivery endpoint; each fills its part of the State.
func (j *Journal) AddSource(fn func(*State)) { j.sources = append(j.sources, fn) }

// fail is the fail-stop policy for stable-storage errors.
func (j *Journal) fail(err error) {
	if err != nil {
		panic("durable: journal write failed (stable storage is fail-stop): " + err.Error())
	}
}

// OnBarrier registers the group-commit hooks: hold fires synchronously
// when a commit barrier parks awaiting its covering fsync, release fires
// once that fsync lands. The cluster wires these to its send gate, which
// dams outbound messages between the two — so nothing a deferred barrier
// justifies (an ack, a grant, a migration) leaves the node before the
// barrier is durable, and invariant 11 survives group commit unchanged.
func (j *Journal) OnBarrier(hold, release func()) {
	j.hold, j.release = hold, release
}

// groupActive reports whether commit barriers defer through the group
// coalescer rather than fsync inline.
func (j *Journal) groupActive() bool {
	return j.opts.GroupCommitDelay > 0 && j.opts.Policy == wal.PolicyCommit && j.release != nil
}

func (j *Journal) append(typ byte, data []byte, commit bool) {
	if commit && j.groupActive() {
		j.hold()
		j.fail(j.log.AppendBarrier(wal.Record{Type: typ, Data: data}, commit, j.release))
	} else {
		j.fail(j.log.Append(wal.Record{Type: typ, Data: data}, commit))
	}
	j.sinceSnap++
}

// Prepared implements store.Journal.
func (j *Journal) Prepared(u store.Update) { j.append(recPrepare, encodeUpdate(u), false) }

// Committed implements store.Journal. Commit barrier.
func (j *Journal) Committed(txnID string) { j.append(recCommitTxn, encodeString(txnID), true) }

// Applied implements store.Journal. Commit barrier: this is the record
// behind invariant 11.
func (j *Journal) Applied(u store.Update) { j.append(recApply, encodeUpdate(u), true) }

// Aborted implements store.Journal.
func (j *Journal) Aborted(txnID string) { j.append(recAbortTxn, encodeString(txnID), false) }

// LogLock journals the replica's full locking state after a mutation.
// barrier marks grant transitions — the mutations whose loss could
// re-grant a lock the replica already released.
func (j *Journal) LogLock(ls LockState, barrier bool) { j.append(recLock, encodeLock(ls), barrier) }

// LogLockShard journals one shard's locking state. Shard 0 writes the
// legacy record type, so an unsharded replica's log bytes are unchanged.
func (j *Journal) LogLockShard(shrd int, ls LockState, barrier bool) {
	if shrd == 0 {
		j.LogLock(ls, barrier)
		return
	}
	j.append(recLockS, encodeLockShard(shrd, ls), barrier)
}

// LogGone journals one agent joining the gone set (the Updated List).
func (j *Journal) LogGone(id agent.ID) { j.append(recGone, encodeAgentID(id), false) }

// NextSeq implements the reliable layer's journal: it persists the send
// counter every relNextStride sends, over-approximated so a restart can
// never reuse a sequence number. Commit barrier: the high-water mark must
// be on disk before any send in its stride leaves the node, or a crash
// restores a stale counter and the restarted node reuses sequence numbers
// that peers' dedup tables silently swallow. The stride amortizes the
// extra fsync to one per relNextStride sends.
func (j *Journal) NextSeq(seq uint64) {
	if seq < j.relNextHi {
		return
	}
	j.relNextHi = (seq/relNextStride + 1) * relNextStride
	j.append(recRelNext, encodeUvarint(j.relNextHi), true)
}

// Seen implements the reliable layer's journal: one record per first-seen
// frame, so the dedup table survives a restart and a retransmit straddling
// the crash is still suppressed.
func (j *Journal) Seen(from runtime.NodeID, seq uint64) {
	j.append(recRelSeen, encodeRelSeen(from, seq), false)
}

// MaybeCompact installs a fresh snapshot once enough records accumulated
// since the last one. The replica calls it from quiescent points (after a
// commit lands); sources must be registered by then.
func (j *Journal) MaybeCompact() {
	if j.opts.CompactEvery > 0 && j.sinceSnap >= j.opts.CompactEvery {
		j.fail(j.Compact())
	}
}

// Compact gathers the current state from the registered sources and
// installs it as the log's snapshot, superseding all records so far.
func (j *Journal) Compact() error {
	st := &State{RelSeen: make(map[runtime.NodeID][]uint64)}
	for _, fn := range j.sources {
		fn(st)
	}
	// Persist the send-counter high-water, not the exact counter: the
	// snapshot supersedes earlier recRelNext records, and sends between the
	// exact value and the high-water would otherwise journal nothing — a
	// crash there must still never reuse a sequence number.
	if j.relNextHi > st.RelNextSeq {
		st.RelNextSeq = j.relNextHi
	}
	if err := j.log.SaveSnapshot(encodeState(st)); err != nil {
		return err
	}
	j.sinceSnap = 0
	return nil
}

// Sync flushes the journal tail to stable storage regardless of policy.
func (j *Journal) Sync() error { return j.log.Sync() }

// Close syncs and closes the journal — the graceful-shutdown path, after
// which the next Open replays a clean log with nothing torn and nothing
// lost.
func (j *Journal) Close() error { return j.log.Close() }

// Kill abandons the journal without syncing — the crash path for
// simulated restarts. Pair with the backend's Crash.
func (j *Journal) Kill() { j.log.Kill() }

// Stats returns the underlying wal counters.
func (j *Journal) Stats() wal.Stats { return j.log.Stats() }

// --- encoding -----------------------------------------------------------
//
// All integers are varints, strings and slices are length-prefixed. The
// encoding is deterministic: map-shaped state is sorted before writing.

func encodeUvarint(v uint64) []byte { return binary.AppendUvarint(nil, v) }

func decodeUvarint(b []byte) (uint64, error) {
	d := &decoder{b: b}
	v := d.uvarint()
	return v, d.finish()
}

func encodeString(s string) []byte {
	b := binary.AppendUvarint(nil, uint64(len(s)))
	return append(b, s...)
}

func decodeString(b []byte) (string, error) {
	d := &decoder{b: b}
	s := d.str()
	return s, d.finish()
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendUpdate(b []byte, u store.Update) []byte {
	b = appendString(b, u.TxnID)
	b = appendString(b, u.Key)
	b = appendString(b, u.Data)
	b = binary.AppendUvarint(b, u.Seq)
	return binary.AppendVarint(b, u.Stamp)
}

func encodeUpdate(u store.Update) []byte { return appendUpdate(nil, u) }

func decodeUpdate(b []byte) (store.Update, error) {
	d := &decoder{b: b}
	u := d.update()
	return u, d.finish()
}

func appendAgentID(b []byte, id agent.ID) []byte {
	b = binary.AppendVarint(b, int64(id.Home))
	b = binary.AppendVarint(b, id.Born)
	return binary.AppendUvarint(b, id.Seq)
}

func encodeAgentID(id agent.ID) []byte { return appendAgentID(nil, id) }

func decodeAgentID(b []byte) (agent.ID, error) {
	d := &decoder{b: b}
	id := d.agentID()
	return id, d.finish()
}

func encodeLock(ls LockState) []byte { return appendLock(nil, ls) }

func appendLock(b []byte, ls LockState) []byte {
	b = binary.AppendUvarint(b, ls.Epoch)
	b = binary.AppendUvarint(b, ls.LLVersion)
	b = binary.AppendUvarint(b, ls.HeadVersion)
	b = appendAgentID(b, ls.Grant)
	b = binary.AppendVarint(b, int64(ls.GrantAttempt))
	b = binary.AppendUvarint(b, uint64(len(ls.LL)))
	for _, id := range ls.LL {
		b = appendAgentID(b, id)
	}
	return b
}

func decodeLock(b []byte) (LockState, error) {
	d := &decoder{b: b}
	ls := d.lock()
	return ls, d.finish()
}

func encodeLockShard(shrd int, ls LockState) []byte {
	b := binary.AppendUvarint(nil, uint64(shrd))
	return appendLock(b, ls)
}

func decodeLockShard(b []byte) (int, LockState, error) {
	d := &decoder{b: b}
	shrd := int(d.uvarint())
	ls := d.lock()
	return shrd, ls, d.finish()
}

func encodeRelSeen(from runtime.NodeID, seq uint64) []byte {
	b := binary.AppendVarint(nil, int64(from))
	return binary.AppendUvarint(b, seq)
}

func decodeRelSeen(b []byte) (runtime.NodeID, uint64, error) {
	d := &decoder{b: b}
	from := runtime.NodeID(d.varint())
	seq := d.uvarint()
	return from, seq, d.finish()
}

func appendStoreState(b []byte, ss store.State) []byte {
	b = binary.AppendUvarint(b, uint64(len(ss.Log)))
	for _, u := range ss.Log {
		b = appendUpdate(b, u)
	}
	b = binary.AppendUvarint(b, uint64(len(ss.Tentative)))
	for _, u := range ss.Tentative {
		b = appendUpdate(b, u)
	}
	return b
}

func encodeState(st *State) []byte {
	var b []byte
	b = appendStoreState(b, st.Store)
	b = appendLock(b, st.Lock)
	b = binary.AppendUvarint(b, uint64(len(st.Gone)))
	for _, id := range st.Gone {
		b = appendAgentID(b, id)
	}
	b = binary.AppendUvarint(b, st.RelNextSeq)
	senders := make([]runtime.NodeID, 0, len(st.RelSeen))
	for from := range st.RelSeen {
		senders = append(senders, from)
	}
	sort.Slice(senders, func(i, j int) bool { return senders[i] < senders[j] })
	b = binary.AppendUvarint(b, uint64(len(senders)))
	for _, from := range senders {
		seqs := append([]uint64(nil), st.RelSeen[from]...)
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		b = binary.AppendVarint(b, int64(from))
		b = binary.AppendUvarint(b, uint64(len(seqs)))
		for _, q := range seqs {
			b = binary.AppendUvarint(b, q)
		}
	}
	// Shard extension, appended only when present: the unsharded snapshot
	// encoding is bit-for-bit the pre-sharding format, and the decoder
	// reads the extension iff bytes remain.
	if len(st.ExtraStores) > 0 || len(st.ExtraLocks) > 0 {
		b = binary.AppendUvarint(b, uint64(len(st.ExtraStores)))
		for _, ss := range st.ExtraStores {
			b = appendStoreState(b, ss)
		}
		b = binary.AppendUvarint(b, uint64(len(st.ExtraLocks)))
		for _, ls := range st.ExtraLocks {
			b = appendLock(b, ls)
		}
	}
	return b
}

func decodeState(b []byte) (*State, error) {
	d := &decoder{b: b}
	st := &State{RelSeen: make(map[runtime.NodeID][]uint64)}
	st.Store = d.storeState()
	st.Lock = d.lock()
	for i, n := 0, int(d.uvarint()); i < n && d.err == nil; i++ {
		st.Gone = append(st.Gone, d.agentID())
	}
	st.RelNextSeq = d.uvarint()
	for i, n := 0, int(d.uvarint()); i < n && d.err == nil; i++ {
		from := runtime.NodeID(d.varint())
		for k, m := 0, int(d.uvarint()); k < m && d.err == nil; k++ {
			st.RelSeen[from] = append(st.RelSeen[from], d.uvarint())
		}
	}
	if d.err == nil && len(d.b) > 0 { // shard extension present
		for i, n := 0, int(d.uvarint()); i < n && d.err == nil; i++ {
			st.ExtraStores = append(st.ExtraStores, d.storeState())
		}
		for i, n := 0, int(d.uvarint()); i < n && d.err == nil; i++ {
			st.ExtraLocks = append(st.ExtraLocks, d.lock())
		}
	}
	if err := d.finish(); err != nil {
		return nil, fmt.Errorf("durable: snapshot: %w", err)
	}
	return st, nil
}

// decoder is a sticky-error reader over one record payload.
type decoder struct {
	b   []byte
	err error
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.err = fmt.Errorf("durable: short uvarint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.err = fmt.Errorf("durable: short varint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if uint64(len(d.b)) < n {
		d.err = fmt.Errorf("durable: short string")
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

func (d *decoder) update() store.Update {
	return store.Update{
		TxnID: d.str(),
		Key:   d.str(),
		Data:  d.str(),
		Seq:   d.uvarint(),
		Stamp: d.varint(),
	}
}

func (d *decoder) agentID() agent.ID {
	return agent.ID{
		Home: runtime.NodeID(d.varint()),
		Born: d.varint(),
		Seq:  d.uvarint(),
	}
}

func (d *decoder) storeState() store.State {
	var ss store.State
	for i, n := 0, int(d.uvarint()); i < n && d.err == nil; i++ {
		ss.Log = append(ss.Log, d.update())
	}
	for i, n := 0, int(d.uvarint()); i < n && d.err == nil; i++ {
		ss.Tentative = append(ss.Tentative, d.update())
	}
	return ss
}

func (d *decoder) lock() LockState {
	ls := LockState{
		Epoch:        d.uvarint(),
		LLVersion:    d.uvarint(),
		HeadVersion:  d.uvarint(),
		Grant:        d.agentID(),
		GrantAttempt: int(d.varint()),
	}
	for i, n := 0, int(d.uvarint()); i < n && d.err == nil; i++ {
		ls.LL = append(ls.LL, d.agentID())
	}
	return ls
}

func (d *decoder) finish() error {
	if d.err != nil {
		return d.err
	}
	if len(d.b) != 0 {
		return fmt.Errorf("durable: %d trailing bytes", len(d.b))
	}
	return nil
}
