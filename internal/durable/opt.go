package durable

// The optimistic commitment protocol (internal/optimistic) journals through
// its own record vocabulary, mirroring its three-state update lifecycle —
// tentative, stable, aborted — plus the Lamport-clock high-water mark that
// keeps stamps monotone across restarts. The barrier discipline encodes the
// protocol's two recovery promises:
//
//   - a replica never re-mints an action sequence number a peer may already
//     hold: its OWN tentative records are commit barriers, fsynced before
//     the gossip layer may advertise the action (foreign tentatives are
//     not barriers — losing one only re-fetches it from a peer);
//   - the stable prefix never reorders or drops (invariant 15): stable
//     records are commit barriers, and replay rebuilds the prefix in
//     journal order;
//   - a restored clock is never below any clock the replica advertised:
//     clock records persist a strided high-water mark (the recRelNext
//     pattern), barrier'd before the advertisement leaves the node.

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/disk"
	"repro/internal/store"
	"repro/internal/wal"
)

// Optimistic record types. Values are part of the on-disk format alongside
// the pessimistic records 1-9: never renumber.
const (
	recOptTent   byte = 10 // optimistic tentative update (+guard, +deps); barrier iff own
	recOptStable byte = 11 // update promoted into the stable prefix (commit barrier)
	recOptAbort  byte = 12 // tentative update aborted by the election (guard loser)
	recOptClock  byte = 13 // Lamport-clock high-water mark (commit barrier)
)

// optClockStride is how coarsely the Lamport clock is journaled: one record
// every stride ticks, restored rounded up a full stride. Stamps only need
// to be monotone, so over-approximating after a crash is free.
const optClockStride = 64

// OptRecord is one tentative action as journaled: the update plus the
// constraint metadata the election needs (the CAS guard and the notAfter
// dependency edges, as TxnIDs).
type OptRecord struct {
	U     store.Update
	Guard string
	Deps  []string
}

// OptState is everything a recovering optimistic replica restores. Stable
// holds the stable prefix in promotion order (all shards interleaved — the
// per-shard sequence numbers in the updates keep each shard's order
// checkable); Overlay holds the still-tentative actions; Aborted keeps the
// election losers. All three tiers keep the FULL records — constraint
// metadata included, and for losers the whole action — because a recovered
// replica must still be able to hand any action, whatever its local fate,
// to peers that have not yet elected it.
type OptState struct {
	Stable  []OptRecord
	Overlay []OptRecord
	Aborted []OptRecord
	ClockHi int64
}

// OptOptions tunes an optimistic journal.
type OptOptions struct {
	// Policy is the wal fsync policy (default wal.PolicyCommit).
	Policy wal.Policy
	// SegmentBytes is the wal segment size (default 1 MiB).
	SegmentBytes int
	// CompactEvery installs a fresh snapshot every this many records
	// (default 4096; negative disables).
	CompactEvery int
	// GroupCommitDelay and Scheduler forward to wal.Options.
	GroupCommitDelay time.Duration
	Scheduler        func(d time.Duration, fn func())
}

// OptJournal is one optimistic replica's open durability log. Like Journal
// it is single-threaded and fail-stop: a replica that cannot journal must
// not keep acknowledging, so every logging method panics on I/O error.
type OptJournal struct {
	log       *wal.Log
	opts      OptOptions
	clockHi   int64
	sinceSnap int
	source    func() *OptState
}

// OpenOpt replays an optimistic journal on b and returns the recovered
// state, or a nil state when the backend holds no history.
func OpenOpt(b disk.Backend, opts OptOptions) (*OptJournal, *OptState, error) {
	if opts.CompactEvery == 0 {
		opts.CompactEvery = 4096
	}
	log, snap, records, err := wal.Open(b, wal.Options{
		Policy:           opts.Policy,
		SegmentBytes:     opts.SegmentBytes,
		GroupCommitDelay: opts.GroupCommitDelay,
		Scheduler:        opts.Scheduler,
	})
	if err != nil {
		return nil, nil, err
	}
	j := &OptJournal{log: log, opts: opts, sinceSnap: len(records)}
	if snap == nil && len(records) == 0 {
		return j, nil, nil
	}
	st, err := replayOpt(snap, records)
	if err != nil {
		return nil, nil, err
	}
	j.clockHi = st.ClockHi
	return j, st, nil
}

// replayOpt rebuilds the optimistic state from a snapshot plus the records
// journaled after it. Any replay error is corruption: records were only
// written for operations that succeeded.
func replayOpt(snap []byte, records []wal.Record) (*OptState, error) {
	st := &OptState{}
	if snap != nil {
		s, err := decodeOptState(snap)
		if err != nil {
			return nil, err
		}
		st = s
	}
	pending := make(map[string]int, len(st.Overlay)) // TxnID -> overlay index
	for i, rec := range st.Overlay {
		pending[rec.U.TxnID] = i
	}
	take := func(txn string) (OptRecord, bool) {
		i, ok := pending[txn]
		if !ok {
			return OptRecord{}, false
		}
		rec := st.Overlay[i]
		last := len(st.Overlay) - 1
		if i != last {
			st.Overlay[i] = st.Overlay[last]
			pending[st.Overlay[i].U.TxnID] = i
		}
		st.Overlay = st.Overlay[:last]
		delete(pending, txn)
		return rec, true
	}
	for i, rec := range records {
		var err error
		switch rec.Type {
		case recOptTent:
			var or OptRecord
			if or, err = decodeOptRecord(rec.Data); err == nil {
				if _, dup := pending[or.U.TxnID]; dup {
					err = fmt.Errorf("tentative %s journaled twice", or.U.TxnID)
				} else {
					pending[or.U.TxnID] = len(st.Overlay)
					st.Overlay = append(st.Overlay, or)
				}
			}
		case recOptStable:
			var or OptRecord
			if or, err = decodeOptRecord(rec.Data); err == nil {
				take(or.U.TxnID)
				st.Stable = append(st.Stable, or)
			}
		case recOptAbort:
			var txn string
			if txn, err = decodeString(rec.Data); err == nil {
				if or, ok := take(txn); ok {
					st.Aborted = append(st.Aborted, or)
				}
			}
		case recOptClock:
			var hi int64
			if hi, err = decodeVarint(rec.Data); err == nil && hi > st.ClockHi {
				st.ClockHi = hi
			}
		default:
			err = fmt.Errorf("unknown record type %d", rec.Type)
		}
		if err != nil {
			return nil, fmt.Errorf("durable: replaying optimistic record %d (type %d): %w", i, rec.Type, err)
		}
	}
	return st, nil
}

// fail is the fail-stop policy for stable-storage errors.
func (j *OptJournal) fail(err error) {
	if err != nil {
		panic("durable: optimistic journal write failed (stable storage is fail-stop): " + err.Error())
	}
}

func (j *OptJournal) append(typ byte, data []byte, commit bool) {
	j.fail(j.log.Append(wal.Record{Type: typ, Data: data}, commit))
	j.sinceSnap++
	j.maybeCompact()
}

// Tentative journals a staged action. barrier must be true for the
// replica's OWN submissions: the record must be durable before the action
// is advertised, or a crashed origin could re-mint an OSeq peers already
// hold under different contents.
func (j *OptJournal) Tentative(rec OptRecord, barrier bool) {
	j.append(recOptTent, encodeOptRecord(rec), barrier)
}

// Stable journals an action's promotion into the stable prefix; rec.U.Seq
// must carry the assigned stable sequence number. Commit barrier: this is
// the record behind invariant 15.
func (j *OptJournal) Stable(rec OptRecord) { j.append(recOptStable, encodeOptRecord(rec), true) }

// Abort journals an election loser's discard.
func (j *OptJournal) Abort(txnID string) { j.append(recOptAbort, encodeString(txnID), false) }

// Clock persists the Lamport clock's strided high-water mark. Callers must
// invoke it before advertising a clock value; restarts restore a clock at
// least as high as anything ever advertised. Below the journaled high
// water it is free.
func (j *OptJournal) Clock(c int64) {
	if c < j.clockHi {
		return
	}
	j.clockHi = (c/optClockStride + 1) * optClockStride
	j.append(recOptClock, encodeVarint(j.clockHi), true)
}

// SetSource registers the snapshot contributor used by compaction. The
// contract: the state fn returns must already reflect any record being
// appended — compaction can fire inside the append, and the snapshot
// supersedes every record before it. The replica upholds this by applying
// to its store before journaling.
func (j *OptJournal) SetSource(fn func() *OptState) { j.source = fn }

func (j *OptJournal) maybeCompact() {
	if j.source == nil || j.opts.CompactEvery <= 0 || j.sinceSnap < j.opts.CompactEvery {
		return
	}
	st := j.source()
	if st.ClockHi < j.clockHi {
		st.ClockHi = j.clockHi
	}
	j.fail(j.log.SaveSnapshot(encodeOptState(st)))
	j.sinceSnap = 0
}

// Sync flushes the journal tail to stable storage regardless of policy.
func (j *OptJournal) Sync() error { return j.log.Sync() }

// Close syncs and closes the journal (graceful shutdown).
func (j *OptJournal) Close() error { return j.log.Close() }

// Kill abandons the journal without syncing — the crash path. Pair with
// the backend's Crash.
func (j *OptJournal) Kill() { j.log.Kill() }

// Stats returns the underlying wal counters.
func (j *OptJournal) Stats() wal.Stats { return j.log.Stats() }

// --- encoding -----------------------------------------------------------

func encodeVarint(v int64) []byte { return binary.AppendVarint(nil, v) }

func decodeVarint(b []byte) (int64, error) {
	d := &decoder{b: b}
	v := d.varint()
	return v, d.finish()
}

func appendOptRecord(b []byte, rec OptRecord) []byte {
	b = appendUpdate(b, rec.U)
	b = appendString(b, rec.Guard)
	b = binary.AppendUvarint(b, uint64(len(rec.Deps)))
	for _, dep := range rec.Deps {
		b = appendString(b, dep)
	}
	return b
}

func encodeOptRecord(rec OptRecord) []byte { return appendOptRecord(nil, rec) }

func (d *decoder) optRecord() OptRecord {
	rec := OptRecord{U: d.update(), Guard: d.str()}
	for i, n := 0, int(d.uvarint()); i < n && d.err == nil; i++ {
		rec.Deps = append(rec.Deps, d.str())
	}
	return rec
}

func decodeOptRecord(b []byte) (OptRecord, error) {
	d := &decoder{b: b}
	rec := d.optRecord()
	return rec, d.finish()
}

func encodeOptState(st *OptState) []byte {
	var b []byte
	b = binary.AppendUvarint(b, uint64(len(st.Stable)))
	for _, rec := range st.Stable {
		b = appendOptRecord(b, rec)
	}
	b = binary.AppendUvarint(b, uint64(len(st.Overlay)))
	for _, rec := range st.Overlay {
		b = appendOptRecord(b, rec)
	}
	b = binary.AppendUvarint(b, uint64(len(st.Aborted)))
	for _, rec := range st.Aborted {
		b = appendOptRecord(b, rec)
	}
	return binary.AppendVarint(b, st.ClockHi)
}

func decodeOptState(b []byte) (*OptState, error) {
	d := &decoder{b: b}
	st := &OptState{}
	for i, n := 0, int(d.uvarint()); i < n && d.err == nil; i++ {
		st.Stable = append(st.Stable, d.optRecord())
	}
	for i, n := 0, int(d.uvarint()); i < n && d.err == nil; i++ {
		st.Overlay = append(st.Overlay, d.optRecord())
	}
	for i, n := 0, int(d.uvarint()); i < n && d.err == nil; i++ {
		st.Aborted = append(st.Aborted, d.optRecord())
	}
	st.ClockHi = d.varint()
	if err := d.finish(); err != nil {
		return nil, fmt.Errorf("durable: optimistic snapshot: %w", err)
	}
	return st, nil
}
