package durable

import (
	"fmt"
	"testing"

	"repro/internal/disk"
	"repro/internal/store"
)

func optRec(txn, key, data string, stamp int64, guard string, deps ...string) OptRecord {
	return OptRecord{
		U:     store.Update{TxnID: txn, Key: key, Data: data, Stamp: stamp},
		Guard: guard,
		Deps:  deps,
	}
}

func openOpt(t *testing.T, b disk.Backend, opts OptOptions) (*OptJournal, *OptState) {
	t.Helper()
	j, st, err := OpenOpt(b, opts)
	if err != nil {
		t.Fatalf("OpenOpt: %v", err)
	}
	return j, st
}

func TestOptJournalReplayLifecycle(t *testing.T) {
	b := disk.NewMem()
	j, st := openOpt(t, b, OptOptions{})
	if st != nil {
		t.Fatalf("fresh backend replayed state %+v", st)
	}
	own := optRec("o001-s000-000000001", "k", "a", 1, "")
	foreign := optRec("o002-s000-000000001", "k", "b", 1, GuardStringForTest, "o001-s000-000000001")
	loser := optRec("o003-s000-000000001", "k", "c", 2, "")
	j.Tentative(own, true)
	j.Tentative(foreign, false)
	j.Tentative(loser, false)
	stable := own
	stable.U.Seq = 1
	j.Stable(stable)
	j.Abort(loser.U.TxnID)
	j.Clock(100)
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	_, st = openOpt(t, b, OptOptions{})
	if st == nil {
		t.Fatal("no state replayed")
	}
	if len(st.Stable) != 1 || st.Stable[0].U != stable.U {
		t.Fatalf("Stable = %+v, want the promoted record", st.Stable)
	}
	if len(st.Overlay) != 1 || st.Overlay[0].U.TxnID != foreign.U.TxnID {
		t.Fatalf("Overlay = %+v, want only the undecided foreign record", st.Overlay)
	}
	if g, d := st.Overlay[0].Guard, st.Overlay[0].Deps; g != foreign.Guard || len(d) != 1 || d[0] != foreign.Deps[0] {
		t.Fatalf("constraint metadata lost: %+v", st.Overlay[0])
	}
	if len(st.Aborted) != 1 || st.Aborted[0].U != loser.U {
		t.Fatalf("Aborted = %+v, want the full loser record", st.Aborted)
	}
	// Clock(100) journals the next stride boundary above 100.
	if st.ClockHi != 128 {
		t.Fatalf("ClockHi = %d, want 128", st.ClockHi)
	}
}

// GuardStringForTest exercises a non-empty guard through the codec.
const GuardStringForTest = "o009-s000-000000009"

// TestOptJournalCrashKeepsBarriers: a power cut past the last fsync loses
// non-barrier foreign tentatives but never an own tentative, a stable
// record, or an advertised clock.
func TestOptJournalCrashKeepsBarriers(t *testing.T) {
	b := disk.NewMem()
	j, _ := openOpt(t, b, OptOptions{})
	own := optRec("o001-s000-000000001", "k", "a", 1, "")
	j.Tentative(own, true) // barrier: fsynced
	j.Clock(1)             // barrier: fsynced
	foreign := optRec("o002-s000-000000001", "k", "b", 5, "")
	j.Tentative(foreign, false) // no barrier: at the crash's mercy
	j.Kill()
	b.Crash()

	_, st := openOpt(t, b, OptOptions{})
	if st == nil {
		t.Fatal("no state replayed")
	}
	found := false
	for _, rec := range st.Overlay {
		switch rec.U.TxnID {
		case own.U.TxnID:
			found = true
		case foreign.U.TxnID:
			t.Fatal("un-fsynced foreign tentative survived a power cut (Mem backend should truncate)")
		}
	}
	if !found {
		t.Fatal("own (barrier'd) tentative lost in crash")
	}
	if st.ClockHi < 1 {
		t.Fatalf("ClockHi = %d, want >= the advertised clock", st.ClockHi)
	}
}

// TestOptJournalCompaction: the snapshot round-trips the full state and
// replaces the record tail.
func TestOptJournalCompaction(t *testing.T) {
	b := disk.NewMem()
	j, _ := openOpt(t, b, OptOptions{CompactEvery: 8})
	var stable []OptRecord
	var overlay []OptRecord
	j.SetSource(func() *OptState {
		return &OptState{
			Stable:  append([]OptRecord(nil), stable...),
			Overlay: append([]OptRecord(nil), overlay...),
		}
	})
	// The source must reflect a record BEFORE it is journaled — the
	// journal may compact inside the append, and the snapshot then
	// replaces everything before it. The replica upholds this by applying
	// to its store first (accept, tryPromote); the test mirrors it.
	for i := 0; i < 20; i++ {
		rec := optRec(fmt.Sprintf("o001-s000-%09d", i+1), fmt.Sprintf("k%d", i), "v", int64(i+1), "")
		overlay = []OptRecord{rec}
		j.Tentative(rec, true)
		rec.U.Seq = uint64(i + 1)
		stable = append(stable, rec)
		overlay = nil
		j.Stable(rec)
	}
	last := optRec("o002-s000-000000001", "pending", "p", 99, "")
	overlay = append(overlay, last)
	j.Tentative(last, false)
	if j.Stats().Snapshots == 0 {
		t.Fatal("no snapshot installed")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	_, st := openOpt(t, b, OptOptions{})
	if st == nil {
		t.Fatal("no state replayed")
	}
	if len(st.Stable) != 20 {
		t.Fatalf("replayed %d stable records, want 20", len(st.Stable))
	}
	for i, rec := range st.Stable {
		if rec.U.Seq != uint64(i+1) {
			t.Fatalf("stable[%d].Seq = %d", i, rec.U.Seq)
		}
	}
	if len(st.Overlay) != 1 || st.Overlay[0].U.TxnID != last.U.TxnID {
		t.Fatalf("Overlay = %+v, want the pending record", st.Overlay)
	}
}
