package sweep

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestResultsIndexedByPoint(t *testing.T) {
	points := make([]int, 100)
	for i := range points {
		points[i] = i * 3
	}
	for _, par := range []int{1, 2, 7, 100, 0} {
		got, err := Run(Runner{Parallelism: par}, points, func(i, p int) (int, error) {
			return p * 2, nil
		})
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		for i, r := range got {
			if r != points[i]*2 {
				t.Fatalf("par=%d: results[%d] = %d, want %d", par, i, r, points[i]*2)
			}
		}
	}
}

func TestEmptySweep(t *testing.T) {
	got, err := Run(Runner{}, nil, func(i, p int) (int, error) { return 0, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestErrorAggregation(t *testing.T) {
	points := []int{0, 1, 2, 3, 4, 5}
	_, err := Run(Runner{Parallelism: 3}, points, func(i, p int) (string, error) {
		if p%2 == 1 {
			return "", fmt.Errorf("odd point %d", p)
		}
		return "ok", nil
	})
	if err == nil {
		t.Fatal("expected aggregated error")
	}
	var pe *PointError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v does not unwrap to PointError", err)
	}
	// All three odd points must be reported, not just the first.
	for _, idx := range []int{1, 3, 5} {
		want := fmt.Sprintf("sweep point %d", idx)
		if !contains(err.Error(), want) {
			t.Errorf("aggregated error missing %q: %v", want, err)
		}
	}
}

func TestFailedPointDoesNotAbortSweep(t *testing.T) {
	points := []int{1, 2, 3, 4}
	got, err := Run(Runner{Parallelism: 2}, points, func(i, p int) (int, error) {
		if p == 2 {
			return 0, errors.New("boom")
		}
		return p, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if got[0] != 1 || got[2] != 3 || got[3] != 4 {
		t.Fatalf("healthy points lost: %v", got)
	}
	if got[1] != 0 {
		t.Fatalf("failed point should hold zero value, got %d", got[1])
	}
}

func TestProgressSerializedAndComplete(t *testing.T) {
	const n = 64
	points := make([]struct{}, n)
	var calls atomic.Int32
	var inCallback atomic.Int32
	lastDone := 0
	_, err := Run(Runner{Parallelism: 8, OnProgress: func(done, total int) {
		if inCallback.Add(1) != 1 {
			t.Error("OnProgress called concurrently")
		}
		if total != n {
			t.Errorf("total = %d, want %d", total, n)
		}
		if done != lastDone+1 {
			t.Errorf("done = %d after %d (not monotone)", done, lastDone)
		}
		lastDone = done
		calls.Add(1)
		inCallback.Add(-1)
	}}, points, func(i int, p struct{}) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != n {
		t.Fatalf("OnProgress called %d times, want %d", calls.Load(), n)
	}
}

func TestDeterministicAcrossParallelism(t *testing.T) {
	// A pure function of the point must give identical slices at any
	// parallelism — the structural property the harness leans on.
	points := make([]int64, 200)
	for i := range points {
		points[i] = int64(i)
	}
	run := func(par int) []int64 {
		out, err := Run(Runner{Parallelism: par}, points, func(i int, p int64) (int64, error) {
			return p*p + 7, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(1), run(16)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("parallelism changed results at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
