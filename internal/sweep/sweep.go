// Package sweep executes grids of independent simulation points across a
// pool of worker goroutines.
//
// Every experiment in this reproduction is a sweep: a slice of run
// configurations, each of which is a fully self-contained deterministic
// simulation (its own des.Simulator, its own seeded random source, its own
// cluster). The points share nothing, so they parallelize perfectly — and
// because results are written into a slice indexed by point (never ordered
// by completion), the output of a sweep is byte-for-byte identical at any
// parallelism. Parallelism changes wall-clock time, nothing else.
//
// The runner is generic so the harness can sweep anything — RunConfig
// grids, crash counts, read fractions — without this package importing the
// harness (which imports this package back).
package sweep

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Runner configures a worker pool. The zero value runs one worker per
// GOMAXPROCS with no progress reporting.
type Runner struct {
	// Parallelism is the number of worker goroutines; values <= 0 mean
	// runtime.GOMAXPROCS(0). It is clamped to the number of points.
	// Parallelism 1 runs every point inline on the calling goroutine.
	Parallelism int
	// OnProgress, when non-nil, is called after each point completes with
	// the number of completed points and the total. Calls are serialized
	// (never concurrent), but at parallelism > 1 they come from worker
	// goroutines.
	OnProgress func(done, total int)
}

// PointError records the failure of a single sweep point. Errors from a
// sweep are PointErrors joined with errors.Join, so callers can recover
// every failing index with errors.As over the joined tree.
type PointError struct {
	Index int
	Err   error
}

func (e *PointError) Error() string { return fmt.Sprintf("sweep point %d: %v", e.Index, e.Err) }

func (e *PointError) Unwrap() error { return e.Err }

// workers resolves the effective worker count for n points.
func (r Runner) workers(n int) int {
	w := r.Parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return w
}

// Run executes fn once per point and returns the results in point order:
// results[i] is fn(i, points[i]) no matter which worker ran it or when it
// finished. Failed points leave the zero R at their index; all failures are
// aggregated (wrapped as PointError, joined in index order) into the
// returned error. Run blocks until every point has been attempted — one bad
// point never discards the rest of the sweep.
func Run[P, R any](r Runner, points []P, fn func(i int, p P) (R, error)) ([]R, error) {
	n := len(points)
	results := make([]R, n)
	if n == 0 {
		return results, nil
	}
	errs := make([]error, n)
	workers := r.workers(n)

	if workers == 1 {
		for i, p := range points {
			res, err := fn(i, p)
			results[i] = res
			if err != nil {
				errs[i] = &PointError{Index: i, Err: err}
			}
			if r.OnProgress != nil {
				r.OnProgress(i+1, n)
			}
		}
		return results, errors.Join(errs...)
	}

	var (
		next atomic.Int64 // next unclaimed point
		mu   sync.Mutex   // serializes OnProgress and the done count
		done int
		wg   sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				res, err := fn(i, points[i])
				results[i] = res
				if err != nil {
					errs[i] = &PointError{Index: i, Err: err}
				}
				if r.OnProgress != nil {
					mu.Lock()
					done++
					r.OnProgress(done, n)
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return results, errors.Join(errs...)
}
