package agent

import (
	"testing"
	"time"

	"repro/internal/des"
	"repro/internal/simnet"
)

// testAgent records every hook invocation and runs optional scripted hooks.
type testAgent struct {
	arrivals  []simnet.NodeID
	failures  []simnet.NodeID
	messages  []any
	events    []any
	onArrive  func(ctx *Context)
	onFail    func(ctx *Context, dest simnet.NodeID)
	onMessage func(ctx *Context, from simnet.NodeID, payload any)
	onEvent   func(ctx *Context, ev any)
	size      int
}

func (a *testAgent) OnArrive(ctx *Context) {
	a.arrivals = append(a.arrivals, ctx.Node())
	if a.onArrive != nil {
		a.onArrive(ctx)
	}
}

func (a *testAgent) OnMigrateFailed(ctx *Context, dest simnet.NodeID) {
	a.failures = append(a.failures, dest)
	if a.onFail != nil {
		a.onFail(ctx, dest)
	}
}

func (a *testAgent) OnMessage(ctx *Context, from simnet.NodeID, payload any) {
	a.messages = append(a.messages, payload)
	if a.onMessage != nil {
		a.onMessage(ctx, from, payload)
	}
}

func (a *testAgent) OnLocalEvent(ctx *Context, ev any) {
	a.events = append(a.events, ev)
	if a.onEvent != nil {
		a.onEvent(ctx, ev)
	}
}

func (a *testAgent) WireSize() int {
	if a.size > 0 {
		return a.size
	}
	return DefaultAgentSize
}

func rig(t *testing.T, n int, cfg Config) (*des.Simulator, *simnet.Network, *Platform) {
	t.Helper()
	sim := des.New(21)
	net := simnet.New(sim, simnet.FullMesh(n), simnet.Constant(5*time.Millisecond))
	p := NewPlatform(sim, net, cfg)
	for i := 1; i <= n; i++ {
		p.Host(simnet.NodeID(i), nil)
	}
	return sim, net, p
}

func TestSpawnActivatesAtHome(t *testing.T) {
	sim, _, p := rig(t, 3, Config{})
	a := &testAgent{}
	ctx := p.Spawn(2, a)
	sim.Run()
	if len(a.arrivals) != 1 || a.arrivals[0] != 2 {
		t.Fatalf("arrivals = %v", a.arrivals)
	}
	if ctx.ID().Home != 2 {
		t.Fatalf("ID home = %d", ctx.ID().Home)
	}
	if ctx.Node() != 2 || !ctx.Alive() {
		t.Fatalf("node=%d alive=%v", ctx.Node(), ctx.Alive())
	}
	if p.Stats().AgentsCreated != 1 {
		t.Fatalf("stats = %+v", p.Stats())
	}
}

func TestMigrationSuccess(t *testing.T) {
	sim, _, p := rig(t, 3, Config{})
	a := &testAgent{}
	ctx := p.Spawn(1, a)
	ctx.MigrateTo(3)
	sim.Run()
	if len(a.arrivals) != 2 || a.arrivals[1] != 3 {
		t.Fatalf("arrivals = %v", a.arrivals)
	}
	if sim.Now().Duration() < 5*time.Millisecond {
		t.Fatal("migration paid no latency")
	}
	if ctx.Node() != 3 {
		t.Fatalf("node = %d", ctx.Node())
	}
	st := p.Stats()
	if st.MigrationsStarted != 1 || st.MigrationsCompleted != 1 || st.MigrationsFailed != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if len(p.Place(1).Residents()) != 0 || len(p.Place(3).Residents()) != 1 {
		t.Fatal("residency not transferred")
	}
}

func TestMigrationToDownNodeFails(t *testing.T) {
	sim, net, p := rig(t, 3, Config{MigrationTimeout: 50 * time.Millisecond})
	a := &testAgent{}
	ctx := p.Spawn(1, a)
	net.SetDown(2, true)
	ctx.MigrateTo(2)
	sim.Run()
	if len(a.failures) != 1 || a.failures[0] != 2 {
		t.Fatalf("failures = %v", a.failures)
	}
	if ctx.Node() != 1 || !ctx.Alive() {
		t.Fatal("agent not re-activated at origin")
	}
	if sim.Now().Duration() != 50*time.Millisecond {
		t.Fatalf("failure detected at %v, want the 50ms timeout", sim.Now())
	}
	if p.Stats().MigrationsFailed != 1 {
		t.Fatalf("stats = %+v", p.Stats())
	}
}

func TestLateEnvelopeRefused(t *testing.T) {
	// Timeout shorter than latency: the origin re-activates the agent,
	// then the envelope lands and must be refused — never two copies.
	sim, _, p := rig(t, 2, Config{MigrationTimeout: time.Millisecond})
	a := &testAgent{}
	ctx := p.Spawn(1, a)
	ctx.MigrateTo(2)
	sim.Run()
	if ctx.Node() != 1 {
		t.Fatalf("agent at %d, want origin 1", ctx.Node())
	}
	if got := len(a.arrivals); got != 1 {
		t.Fatalf("arrivals = %v (duplicate activation?)", a.arrivals)
	}
	st := p.Stats()
	if st.MigrationsRefused != 1 || st.MigrationsFailed != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if len(p.Place(2).Residents()) != 0 {
		t.Fatal("refused agent became resident at dest")
	}
}

func TestChainedItinerary(t *testing.T) {
	sim, _, p := rig(t, 5, Config{})
	a := &testAgent{}
	a.onArrive = func(ctx *Context) {
		next := ctx.Node() + 1
		if next <= 5 {
			ctx.MigrateTo(next)
		} else {
			ctx.Dispose()
		}
	}
	p.Spawn(1, a)
	sim.Run()
	want := []simnet.NodeID{1, 2, 3, 4, 5}
	if len(a.arrivals) != len(want) {
		t.Fatalf("arrivals = %v", a.arrivals)
	}
	for i := range want {
		if a.arrivals[i] != want[i] {
			t.Fatalf("arrivals = %v", a.arrivals)
		}
	}
	if p.Stats().AgentsDisposed != 1 {
		t.Fatalf("stats = %+v", p.Stats())
	}
}

func TestSendToAgent(t *testing.T) {
	sim, _, p := rig(t, 2, Config{})
	a, b := &testAgent{}, &testAgent{}
	ctxA := p.Spawn(1, a)
	ctxB := p.Spawn(2, b)
	ctxA.SendToAgent(2, ctxB.ID(), "ping", 16)
	sim.Run()
	if len(b.messages) != 1 || b.messages[0] != "ping" {
		t.Fatalf("b.messages = %v", b.messages)
	}
	if p.Stats().AgentMsgsDelivered != 1 {
		t.Fatalf("stats = %+v", p.Stats())
	}
}

func TestMessageToAbsentAgentDropped(t *testing.T) {
	sim, _, p := rig(t, 2, Config{})
	a := &testAgent{}
	ctxA := p.Spawn(1, a)
	ctxA.SendToAgent(2, ID{Home: 2, Seq: 99}, "ping", 16)
	sim.Run()
	if p.Stats().AgentMsgsDropped != 1 {
		t.Fatalf("stats = %+v", p.Stats())
	}
}

func TestNotifyResidents(t *testing.T) {
	sim, _, p := rig(t, 2, Config{})
	a, b := &testAgent{}, &testAgent{}
	p.Spawn(1, a)
	p.Spawn(1, b)
	c := &testAgent{}
	p.Spawn(2, c)
	p.Place(1).NotifyResidents("ll-changed")
	sim.Run()
	if len(a.events) != 1 || len(b.events) != 1 {
		t.Fatalf("events a=%v b=%v", a.events, b.events)
	}
	if len(c.events) != 0 {
		t.Fatal("notification leaked to other node")
	}
}

func TestNotifyResidentsSurvivesMutation(t *testing.T) {
	sim, _, p := rig(t, 2, Config{})
	a := &testAgent{}
	a.onEvent = func(ctx *Context, ev any) { ctx.MigrateTo(2) }
	b := &testAgent{}
	p.Spawn(1, a)
	p.Spawn(1, b)
	p.Place(1).NotifyResidents("go")
	sim.Run()
	if len(a.events) != 1 || len(b.events) != 1 {
		t.Fatalf("events a=%v b=%v", a.events, b.events)
	}
}

func TestDisposeStopsDelivery(t *testing.T) {
	sim, _, p := rig(t, 2, Config{})
	a, b := &testAgent{}, &testAgent{}
	ctxA := p.Spawn(1, a)
	ctxB := p.Spawn(2, b)
	ctxA.SendToAgent(2, ctxB.ID(), "ping", 16)
	ctxB.Dispose()
	sim.Run()
	if len(b.messages) != 0 {
		t.Fatal("disposed agent received message")
	}
	ctxB.Dispose() // idempotent
	if p.Stats().AgentsDisposed != 1 {
		t.Fatalf("stats = %+v", p.Stats())
	}
}

func TestAfterSkippedWhenDisposed(t *testing.T) {
	sim, _, p := rig(t, 1, Config{})
	a := &testAgent{}
	ctx := p.Spawn(1, a)
	fired := false
	ctx.After(10*time.Millisecond, func() { fired = true })
	ctx.Dispose()
	sim.Run()
	if fired {
		t.Fatal("timer fired after dispose")
	}
}

type deathRec struct{ ids []ID }

func (d *deathRec) OnAgentDeath(id ID) { d.ids = append(d.ids, id) }

func TestKillResidentsAnnouncesDeaths(t *testing.T) {
	sim, net, p := rig(t, 3, Config{DeathNoticeDelay: 20 * time.Millisecond})
	listeners := make([]*deathRec, 4)
	for i := 1; i <= 3; i++ {
		listeners[i] = &deathRec{}
		p.Place(simnet.NodeID(i)).SetDeathListener(listeners[i])
	}
	a := &testAgent{}
	ctx := p.Spawn(2, a)
	net.SetDown(2, true)
	killed := p.KillResidents(2)
	sim.Run()
	if len(killed) != 1 || killed[0] != ctx.ID() {
		t.Fatalf("killed = %v", killed)
	}
	if ctx.Alive() {
		t.Fatal("killed agent still alive")
	}
	for i := 1; i <= 3; i++ {
		if len(listeners[i].ids) != 1 || listeners[i].ids[0] != ctx.ID() {
			t.Fatalf("listener %d got %v", i, listeners[i].ids)
		}
	}
	if p.Stats().AgentsKilled != 1 {
		t.Fatalf("stats = %+v", p.Stats())
	}
}

func TestAgentDiesIfOriginCrashesDuringFailedMigration(t *testing.T) {
	sim, net, p := rig(t, 3, Config{MigrationTimeout: 50 * time.Millisecond, DeathNoticeDelay: time.Millisecond})
	d := &deathRec{}
	p.Place(3).SetDeathListener(d)
	a := &testAgent{}
	ctx := p.Spawn(1, a)
	net.SetDown(2, true)
	ctx.MigrateTo(2)
	sim.After(10*time.Millisecond, func() { net.SetDown(1, true) })
	sim.Run()
	if ctx.Alive() {
		t.Fatal("agent survived double crash")
	}
	if len(a.failures) != 0 {
		t.Fatal("OnMigrateFailed fired for a dead agent")
	}
	if len(d.ids) != 1 {
		t.Fatalf("death notices = %v", d.ids)
	}
}

func TestIDOrdering(t *testing.T) {
	a := ID{Home: 1, Born: 100, Seq: 1}
	b := ID{Home: 2, Born: 100, Seq: 2}
	c := ID{Home: 1, Born: 200, Seq: 3}
	if !a.Less(b) || b.Less(a) {
		t.Fatal("home tiebreak wrong")
	}
	if !a.Less(c) || c.Less(a) {
		t.Fatal("born ordering wrong")
	}
	if (ID{}).IsZero() != true || a.IsZero() {
		t.Fatal("IsZero wrong")
	}
	if a.String() != "A1.1" {
		t.Fatalf("String = %q", a.String())
	}
}

func TestWireSizeAccounting(t *testing.T) {
	sim, net, p := rig(t, 2, Config{})
	a := &testAgent{size: 2048}
	ctx := p.Spawn(1, a)
	ctx.MigrateTo(2)
	sim.Run()
	if got := net.Stats().BytesSent; got != 2048 {
		t.Fatalf("bytes sent = %d, want 2048", got)
	}
	kinds := net.Stats().ByKind
	if kinds["agent-migrate"] != 1 {
		t.Fatalf("by kind = %v", kinds)
	}
}

func TestMigrateToSelfPanics(t *testing.T) {
	_, _, p := rig(t, 2, Config{})
	ctx := p.Spawn(1, &testAgent{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ctx.MigrateTo(1)
}

func TestCostDelegation(t *testing.T) {
	sim := des.New(1)
	net := simnet.New(sim, simnet.Ring(4), nil)
	p := NewPlatform(sim, net, Config{})
	for i := 1; i <= 4; i++ {
		p.Host(simnet.NodeID(i), nil)
	}
	ctx := p.Spawn(1, &testAgent{})
	if ctx.Cost(3) != 2 {
		t.Fatalf("Cost(3) = %v", ctx.Cost(3))
	}
}

func TestHostTwicePanics(t *testing.T) {
	_, _, p := rig(t, 2, Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Host(1, nil)
}

func TestContextAccessorsAndServerHelpers(t *testing.T) {
	sim, net, p := rig(t, 3, Config{})
	a := &testAgent{}
	ctx := p.Spawn(2, a)
	if ctx.Node() != 2 {
		t.Fatalf("Node = %d", ctx.Node())
	}
	if ctx.Now() != sim.Now() {
		t.Fatal("Now mismatch")
	}
	if ctx.Rand() != sim.Rand() {
		t.Fatal("Rand mismatch")
	}
	// Send to a server-less node: delivered to demux, dropped silently.
	ctx.Send(3, "to-server", 8)
	// Platform-level helpers pay network latency too.
	b := &testAgent{}
	ctxB := p.Spawn(3, b)
	p.SendToAgent(1, 3, ctxB.ID(), "hello", 8)
	p.SendToServer(1, 3, "server-bound", 8)
	sim.Run()
	if len(b.messages) != 1 || b.messages[0] != "hello" {
		t.Fatalf("messages = %v", b.messages)
	}
	if net.Stats().MessagesSent != 3 {
		t.Fatalf("sent = %d", net.Stats().MessagesSent)
	}
}

func TestSendAfterDisposeIsNoop(t *testing.T) {
	sim, net, p := rig(t, 2, Config{})
	ctx := p.Spawn(1, &testAgent{})
	ctx.Dispose()
	ctx.Send(2, "x", 8)
	ctx.SendToAgent(2, ID{Home: 2, Seq: 1}, "x", 8)
	sim.Run()
	if net.Stats().MessagesSent != 0 {
		t.Fatal("disposed agent sent messages")
	}
}

func TestDefaultWireSizeWithoutSizer(t *testing.T) {
	sim, net, p := rig(t, 2, Config{})
	// minimalAgent lacks WireSize: migrations are charged the default.
	ctx := p.Spawn(1, &minimalAgent{})
	ctx.MigrateTo(2)
	sim.Run()
	if got := net.Stats().BytesSent; got != DefaultAgentSize {
		t.Fatalf("bytes = %d, want %d", got, DefaultAgentSize)
	}
}

type minimalAgent struct{}

func (minimalAgent) OnArrive(*Context)                       {}
func (minimalAgent) OnMigrateFailed(*Context, simnet.NodeID) {}
func (minimalAgent) OnMessage(*Context, simnet.NodeID, any)  {}
func (minimalAgent) OnLocalEvent(*Context, any)              {}

// --- wire migration: ack pipelining -------------------------------------

// wireNet claims wire delivery over the simulated network, so these tests
// exercise the serialized migration path (WireEnvelope, acks, batching)
// deterministically under the DES clock.
type wireNet struct{ *simnet.Network }

func (wireNet) WireDelivery() bool { return true }

// wireTestAgent is a testAgent that can cross a serializing fabric.
type wireTestAgent struct{ testAgent }

func (*wireTestAgent) MarshalWire() ([]byte, error) { return []byte("state"), nil }

func wireRig(t *testing.T, n int, cfg Config) (*des.Simulator, *Platform, *[]ID) {
	t.Helper()
	departed := &[]ID{}
	cfg.ThawWire = func(id ID, state []byte) (Behavior, error) {
		if string(state) != "state" {
			t.Fatalf("thaw state = %q", state)
		}
		return &wireTestAgent{}, nil
	}
	cfg.OnDeparted = func(id ID) { *departed = append(*departed, id) }
	sim := des.New(21)
	net := wireNet{simnet.New(sim, simnet.FullMesh(n), simnet.Constant(5*time.Millisecond))}
	p := NewPlatform(sim, net, cfg)
	for i := 1; i <= n; i++ {
		p.Host(simnet.NodeID(i), nil)
	}
	return sim, p, departed
}

// TestWireAckAggregationFlushesOnTimer: several landings inside one flush
// window share a single MigrateAckBatch frame, and every origin copy is
// still retired.
func TestWireAckAggregationFlushesOnTimer(t *testing.T) {
	sim, p, departed := wireRig(t, 2, Config{AckFlushDelay: 10 * time.Millisecond})
	for i := 0; i < 3; i++ {
		p.Spawn(1, &wireTestAgent{}).MigrateTo(2)
	}
	sim.Run()
	st := p.Stats()
	if st.MigrationsCompleted != 3 || st.MigrationsFailed != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.AckBatchesSent != 1 || st.AcksBatched != 3 {
		t.Fatalf("batches=%d acks=%d, want one batch of three", st.AckBatchesSent, st.AcksBatched)
	}
	if len(*departed) != 3 {
		t.Fatalf("departed = %v, want all three origin copies retired", *departed)
	}
}

// TestWireAckAggregationFlushesOnMax: the in-flight ack window bound forces
// an early flush; the leftover ack waits out the full delay. No origin
// falsely times out.
func TestWireAckAggregationFlushesOnMax(t *testing.T) {
	sim, p, departed := wireRig(t, 2, Config{
		MigrationTimeout: time.Second,
		AckFlushDelay:    500 * time.Millisecond,
		AckFlushMax:      2,
	})
	for i := 0; i < 3; i++ {
		p.Spawn(1, &wireTestAgent{}).MigrateTo(2)
	}
	sim.Run()
	st := p.Stats()
	if st.AckBatchesSent != 2 || st.AcksBatched != 3 {
		t.Fatalf("batches=%d acks=%d, want max-bound flush of two then a timed flush of one",
			st.AckBatchesSent, st.AcksBatched)
	}
	if st.MigrationsFailed != 0 || len(*departed) != 3 {
		t.Fatalf("failed=%d departed=%v", st.MigrationsFailed, *departed)
	}
}

// TestStaleMigrationAckIgnored: acks are cumulative per agent (invariant
// 13) — a re-ack of an earlier hop, arriving while a newer migration is in
// flight, must not retire the newer one.
func TestStaleMigrationAckIgnored(t *testing.T) {
	sim, p, departed := wireRig(t, 2, Config{})
	ctx := p.Spawn(1, &wireTestAgent{})
	ctx.MigrateTo(2)
	sim.Run()
	id := ctx.ID()
	ctx2 := p.Place(2).agents[id]
	if ctx2 == nil {
		t.Fatal("agent not resident at dest after first hop")
	}
	ctx2.MigrateTo(1)
	// The destination of hop 1 re-acknowledges a duplicate envelope while
	// hop 2 is pending.
	p.migrateAcked(id, 1)
	if got := p.Stats().StaleAcksIgnored; got != 1 {
		t.Fatalf("StaleAcksIgnored = %d, want 1", got)
	}
	if _, ok := p.pending[id]; !ok {
		t.Fatal("stale ack retired the in-flight migration")
	}
	sim.Run()
	st := p.Stats()
	if st.MigrationsCompleted != 2 || st.MigrationsFailed != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if len(*departed) != 2 {
		t.Fatalf("departed = %v, want both hops acked", *departed)
	}
}

// TestAckDelayZeroAcksImmediately: with aggregation off (the default), each
// landing is acknowledged in its own frame — the legacy stop-and-wait
// behaviour — and no batch frames appear.
func TestAckDelayZeroAcksImmediately(t *testing.T) {
	sim, p, departed := wireRig(t, 2, Config{})
	p.Spawn(1, &wireTestAgent{}).MigrateTo(2)
	sim.Run()
	st := p.Stats()
	if st.AckBatchesSent != 0 || st.AcksBatched != 0 {
		t.Fatalf("batches=%d acks=%d, want no batch frames with aggregation off", st.AckBatchesSent, st.AcksBatched)
	}
	if st.MigrationsCompleted != 1 || len(*departed) != 1 {
		t.Fatalf("completed=%d departed=%v", st.MigrationsCompleted, *departed)
	}
}
