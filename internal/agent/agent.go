// Package agent emulates a mobile-agent platform (the role IBM Aglets plays
// in the paper's prototype) on top of the simulated network.
//
// Go has no code mobility, so "migration" here is state mobility: an agent
// is a Go value implementing Behavior. Over the in-memory simulated fabric
// the value moves between places directly, with a modelled wire size for
// traffic accounting; over a serializing fabric (runtime.WireFabric — the
// live TCP deployment, where each place is its own OS process) the behavior
// is encoded via its WireBehavior hook, shipped as bytes, and reconstructed
// by the destination's ThawWire hook. Either way the protocol layer
// observes the same thing: an agent executes at one place at a time,
// interacts with the co-located server at memory speed, pays network
// latency to move, and can fail to migrate when the destination is down.
//
// The platform also provides the failure-notification service the paper
// assumes ("when a process fails, all other processes are informed of the
// failure in a finite time"): when a host crashes, agents resident there die
// with it, and every surviving node receives an agent-death notice after a
// configurable detection delay.
package agent

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/runtime"
	"repro/internal/trace"
)

// ID identifies a mobile agent. The paper forms agent identifiers from the
// creating host's name plus the local creation time; ID mirrors that with
// the home server's node ID and the virtual creation time, plus a sequence
// number to disambiguate agents born in the same instant.
type ID struct {
	Home runtime.NodeID
	Born int64 // virtual creation time, nanoseconds
	Seq  uint64
}

// IsZero reports whether the ID is unset.
func (id ID) IsZero() bool { return id == ID{} }

// Less defines the total order used for tie-breaking (paper §3.3: ties are
// resolved "by using the mobile agents' identifiers"). Earlier-born agents
// order first; the home node and sequence number break exact ties.
func (id ID) Less(o ID) bool {
	if id.Born != o.Born {
		return id.Born < o.Born
	}
	if id.Home != o.Home {
		return id.Home < o.Home
	}
	return id.Seq < o.Seq
}

// String renders the ID compactly, e.g. "A3.17".
func (id ID) String() string { return fmt.Sprintf("A%d.%d", id.Home, id.Seq) }

// Behavior is the agent's program. All hooks run on the simulator's event
// loop; they may freely call Context methods, including MigrateTo and
// Dispose, from inside any hook.
type Behavior interface {
	// OnArrive runs when the agent is activated at a place: once at
	// creation on its home node, then after every successful migration.
	OnArrive(ctx *Context)
	// OnMigrateFailed runs at the origin place when a migration to dest
	// could not complete within the platform's migration timeout. The
	// agent is active again at its origin.
	OnMigrateFailed(ctx *Context, dest runtime.NodeID)
	// OnMessage delivers a network message addressed to this agent.
	OnMessage(ctx *Context, from runtime.NodeID, payload any)
	// OnLocalEvent delivers a zero-latency notification from the
	// co-located server (e.g. "locking list changed").
	OnLocalEvent(ctx *Context, ev any)
}

// WireSizer lets a behavior report its modelled serialized size in bytes;
// migrations of agents without it are accounted at DefaultAgentSize.
type WireSizer interface{ WireSize() int }

// WireBehavior is a behavior that can serialize itself for migration over a
// fabric whose ends do not share memory. MarshalWire is called only when the
// agent is quiescent (about to leave a place), so implementations may encode
// their full travelling state. A behavior without this hook cannot migrate
// over a runtime.WireFabric.
type WireBehavior interface {
	MarshalWire() ([]byte, error)
}

// DefaultAgentSize is the modelled wire size of an agent whose behavior does
// not implement WireSizer.
const DefaultAgentSize = 512

// DeathListener is notified when an agent is known to have died (its host
// crashed, or it was lost in transit to a crashing host). Servers register
// one to evict dead agents' lock entries.
type DeathListener interface {
	OnAgentDeath(id ID)
}

// Stats aggregates platform counters.
type Stats struct {
	AgentsCreated       int
	AgentsDisposed      int
	AgentsKilled        int // died with a crashed host or in transit to one
	AgentsRegenerated   int // respawned from a checkpoint after being lost
	MigrationsStarted   int
	MigrationsCompleted int
	MigrationsFailed    int // timed out, agent re-activated at origin
	MigrationsRefused   int // envelope arrived after the origin timed out
	AgentMsgsDelivered  int
	AgentMsgsDropped    int
	AckBatchesSent      int // MigrateAckBatch frames flushed (ack aggregation on)
	AcksBatched         int // individual acks carried inside those batches
	StaleAcksIgnored    int // acks for an older hop than the pending migration
}

// Config carries platform tuning knobs.
type Config struct {
	// MigrationTimeout is how long the origin waits for a migration to
	// land before re-activating the agent locally (paper §2: "if a mobile
	// agent cannot migrate to a replicated server host after certain
	// amount of time, the protocol assumes that the replica process at
	// the host has temporarily failed").
	MigrationTimeout time.Duration
	// DeathNoticeDelay is how long after an agent's death the other nodes
	// learn about it.
	DeathNoticeDelay time.Duration
	// LostHandler, if non-nil, is consulted when an agent is lost in
	// transit (its origin crashed while it was migrating, so no place can
	// re-activate it). Returning true claims the loss — the caller will
	// regenerate the agent under its original ID, so the platform must NOT
	// announce the death (a tombstone for the reused ID would make every
	// server reject the reborn agent). Returning false lets the normal
	// death notices flow.
	LostHandler func(id ID, b Behavior) bool
	// ThawWire, if non-nil, reconstructs a behavior from its encoded state
	// when an agent arrives over a serializing fabric. Required for wire
	// migration; ignored over the in-memory fabric.
	ThawWire func(id ID, state []byte) (Behavior, error)
	// OnDeparted, if non-nil, runs at the origin when a wire migration is
	// acknowledged by the destination — the moment the origin knows its
	// copy of the agent is dead weight and any local bookkeeping for the
	// in-flight agent can be dropped.
	OnDeparted func(id ID)
	// AckFlushDelay enables migration-ack aggregation over wire fabrics: a
	// landing is acknowledged within this much time, batched with every
	// other ack owed the same origin, instead of in its own frame. Zero
	// (the default) acks each landing immediately — the legacy behaviour.
	// Must be well below MigrationTimeout: a deferred ack narrows the
	// origin's false-timeout margin by exactly the deferral.
	AckFlushDelay time.Duration
	// AckFlushMax bounds the in-flight ack window: a batch is flushed
	// early once it holds this many acks (default 32). Only meaningful
	// with AckFlushDelay.
	AckFlushMax int
	// Trace, if non-nil, receives platform events.
	Trace *trace.Log
}

func (c *Config) fill() {
	if c.MigrationTimeout <= 0 {
		c.MigrationTimeout = 250 * time.Millisecond
	}
	if c.DeathNoticeDelay <= 0 {
		c.DeathNoticeDelay = 100 * time.Millisecond
	}
	if c.AckFlushMax <= 0 {
		c.AckFlushMax = 32
	}
}

// Platform hosts mobile agents across the nodes of a fabric. The fabric may
// be the simulated network, the ack/retransmit layer in internal/reliable,
// or the live TCP fabric; the platform is agnostic.
type Platform struct {
	net    runtime.Fabric
	eng    runtime.Engine
	cfg    Config
	wire   bool // fabric serializes: migrate as WireEnvelope, not pointers
	places map[runtime.NodeID]*Place
	// pending tracks in-flight migrations by agent ID; the destination
	// place removes the entry when the envelope lands, the timeout fires
	// only if it is still present.
	pending   map[ID]*pendingMigration
	seq       uint64
	bornFloor int64
	stats     Stats
	// ackbuf holds the batched migration acks owed to each origin while
	// ack aggregation (cfg.AckFlushDelay) is on; ackTimer flushes them.
	ackbuf   map[runtime.NodeID][]MigrateAck
	ackCount int
	ackTimer runtime.Timer
}

// AdvanceBirth raises the minimum Born value for subsequently spawned
// agents. Recovery calls this with a value past every timestamp the
// durable state remembers: engines restart their clocks at zero, so
// without the floor a reborn process could mint an ID identical to one in
// a persisted gone set — which every replica would then refuse forever.
func (p *Platform) AdvanceBirth(min int64) {
	if min > p.bornFloor {
		p.bornFloor = min
	}
}

type pendingMigration struct {
	ctx   *Context
	dest  runtime.NodeID
	hop   uint64 // the migration count this entry covers
	timer runtime.Timer
}

// envelope carries a live behavior pointer between places that share one
// address space (the simulated fabric).
type envelope struct {
	id       ID
	behavior Behavior
}

func (envelope) Kind() string { return "agent-migrate" }

// WireEnvelope carries a serialized agent between places in different
// processes. Same accounting kind as envelope: it is the same migration,
// just physically encoded. Hop is the agent's migration count, carried so
// acknowledgements are sequenced per agent (DESIGN.md invariant 13): a
// re-ack for a stale duplicate envelope can then never clear a newer
// pending migration at a revisited origin.
type WireEnvelope struct {
	ID    ID
	Hop   uint64
	State []byte
}

// Kind implements runtime.Kinder.
func (*WireEnvelope) Kind() string { return "agent-migrate" }

// MigrateAck tells a wire migration's origin that the agent landed. Over
// the shared-memory fabric the destination clears the origin's pending
// entry directly; across processes this message does that job. The ack is
// cumulative: it covers the named hop and every earlier one, so a batched
// or reordered ack still clears exactly the right pending entry.
type MigrateAck struct {
	ID  ID
	Hop uint64
}

// Kind implements runtime.Kinder.
func (*MigrateAck) Kind() string { return "agent-migrate-ack" }

// MigrateAckBatch aggregates the acks a destination owes one origin — the
// pipelining half of migration: instead of one ack frame per landing, the
// destination coalesces up to AckFlushMax acks (or AckFlushDelay of them)
// into one frame. Each entry keeps MigrateAck's cumulative semantics.
type MigrateAckBatch struct {
	Acks []MigrateAck
}

// Kind implements runtime.Kinder.
func (*MigrateAckBatch) Kind() string { return "agent-migrate-ack" }

// migrateAckSize is the modelled wire size of a MigrateAck.
const migrateAckSize = 24

// AgentMsg addresses a payload to a specific agent at the destination node.
type AgentMsg struct {
	Target  ID
	Payload any
}

// Kind implements runtime.Kinder.
func (*AgentMsg) Kind() string { return "agent-msg" }

func init() {
	runtime.RegisterWireType(&WireEnvelope{})
	runtime.RegisterWireType(&MigrateAck{})
	runtime.RegisterWireType(&MigrateAckBatch{})
	runtime.RegisterWireType(&AgentMsg{})
}

// NewPlatform creates a platform over net, scheduling its timers on eng.
func NewPlatform(eng runtime.Engine, net runtime.Fabric, cfg Config) *Platform {
	cfg.fill()
	p := &Platform{
		net:     net,
		eng:     eng,
		cfg:     cfg,
		places:  make(map[runtime.NodeID]*Place),
		pending: make(map[ID]*pendingMigration),
		ackbuf:  make(map[runtime.NodeID][]MigrateAck),
	}
	if wf, ok := net.(runtime.WireFabric); ok {
		p.wire = wf.WireDelivery()
	}
	return p
}

// Stats returns a copy of the platform counters.
func (p *Platform) Stats() Stats { return p.stats }

// Host creates the agent place at node and attaches a demultiplexing handler
// to the network: agent-platform payloads are consumed by the place, all
// other messages flow to server (which may be nil for agent-only nodes).
func (p *Platform) Host(node runtime.NodeID, server runtime.Handler) *Place {
	if _, dup := p.places[node]; dup {
		panic(fmt.Sprintf("agent: node %d already hosted", node))
	}
	pl := &Place{platform: p, node: node, agents: make(map[ID]*Context)}
	p.places[node] = pl
	p.net.Attach(node, runtime.HandlerFunc(func(msg runtime.Message) {
		switch payload := msg.Payload.(type) {
		case *envelope:
			pl.receive(payload)
		case *WireEnvelope:
			pl.receiveWire(msg.From, payload)
		case *MigrateAck:
			p.migrateAcked(payload.ID, payload.Hop)
		case *MigrateAckBatch:
			for _, a := range payload.Acks {
				p.migrateAcked(a.ID, a.Hop)
			}
		case *AgentMsg:
			pl.deliverToAgent(msg.From, payload)
		default:
			if server != nil {
				server.Deliver(msg)
			}
		}
	}))
	return pl
}

// Place returns the place at node, or nil if the node is not hosted.
func (p *Platform) Place(node runtime.NodeID) *Place { return p.places[node] }

// Spawn creates and activates an agent at its home node, invoking OnArrive.
func (p *Platform) Spawn(home runtime.NodeID, b Behavior) *Context {
	pl := p.places[home]
	if pl == nil {
		panic(fmt.Sprintf("agent: spawning on unhosted node %d", home))
	}
	p.seq++
	born := int64(p.eng.Now())
	if born < p.bornFloor {
		born = p.bornFloor
	}
	ctx := &Context{
		platform: p,
		behavior: b,
		id:       ID{Home: home, Born: born, Seq: p.seq},
		node:     home,
	}
	pl.addAgent(ctx)
	p.stats.AgentsCreated++
	p.cfg.Trace.Addf(int64(p.eng.Now()), int(home), ctx.id.String(), trace.AgentCreated, "")
	b.OnArrive(ctx)
	return ctx
}

// Respawn activates a regenerated agent at home under its original ID.
// Theorem 2's tie-breaking is identifier-based, so the reborn agent must
// keep its old identity (and with it its queue priority). The caller
// guarantees the previous incarnation is dead and that no death notice was
// sent for the reused ID.
func (p *Platform) Respawn(home runtime.NodeID, b Behavior, id ID) *Context {
	pl := p.places[home]
	if pl == nil {
		panic(fmt.Sprintf("agent: respawning on unhosted node %d", home))
	}
	if _, live := pl.agents[id]; live {
		panic(fmt.Sprintf("agent: respawn of live agent %v", id))
	}
	ctx := &Context{
		platform: p,
		behavior: b,
		id:       id,
		node:     home,
	}
	pl.addAgent(ctx)
	p.stats.AgentsRegenerated++
	p.cfg.Trace.Addf(int64(p.eng.Now()), int(home), id.String(), trace.AgentRegen, "")
	b.OnArrive(ctx)
	return ctx
}

// Casualty is an agent killed by a host crash: its identity plus the
// behavior value that died with it (callers regenerate from checkpoints, not
// from the dead behavior, but the value is useful for bookkeeping).
type Casualty struct {
	ID       ID
	Behavior Behavior
}

// KillResidents disposes every agent currently at node (because the node
// crashed) and schedules death notices to all hosted nodes. It returns the
// IDs of the killed agents.
func (p *Platform) KillResidents(node runtime.NodeID) []ID {
	cs := p.TakeResidents(node)
	ids := make([]ID, len(cs))
	for i, c := range cs {
		ids[i] = c.ID
	}
	p.AnnounceDeaths(ids)
	return ids
}

// TakeResidents kills every agent currently at node WITHOUT announcing the
// deaths, returning the casualties in deterministic (ID) order. The caller
// decides each agent's fate: regenerate it from a checkpoint (no death
// notice — the reused ID must not be tombstoned) or pass its ID to
// AnnounceDeaths.
func (p *Platform) TakeResidents(node runtime.NodeID) []Casualty {
	pl := p.places[node]
	if pl == nil {
		return nil
	}
	var killed []Casualty
	for id, ctx := range pl.agents {
		ctx.state = stateDead
		delete(pl.agents, id)
		killed = append(killed, Casualty{ID: id, Behavior: ctx.behavior})
		p.stats.AgentsKilled++
		p.cfg.Trace.Addf(int64(p.eng.Now()), int(node), id.String(), trace.AgentDied, "host crashed")
	}
	for i := 1; i < len(killed); i++ {
		for j := i; j > 0 && killed[j].ID.Less(killed[j-1].ID); j-- {
			killed[j], killed[j-1] = killed[j-1], killed[j]
		}
	}
	pl.sorted = pl.sorted[:0]
	// Agents in flight toward the crashing node will be handled by their
	// origin's migration timeout; agents in flight *from* it already left.
	return killed
}

// AnnounceDeaths schedules OnAgentDeath at every hosted node's registered
// listener after the detection delay.
func (p *Platform) AnnounceDeaths(ids []ID) {
	if len(ids) == 0 {
		return
	}
	for _, pl := range p.places {
		pl := pl
		p.eng.AfterFunc(p.cfg.DeathNoticeDelay, func() {
			if pl.deaths == nil {
				return
			}
			for _, id := range ids {
				pl.deaths.OnAgentDeath(id)
			}
		})
	}
}

// Place is the agent habitat on one node.
type Place struct {
	platform *Platform
	node     runtime.NodeID
	agents   map[ID]*Context
	sorted   []*Context // residents in ascending ID order (mirrors agents)
	deaths   DeathListener
	scratch  []*Context // reusable NotifyResidents snapshot buffer
}

// addAgent registers a resident in both the lookup map and the ID-ordered
// index. The caller guarantees the ID is not currently resident.
func (pl *Place) addAgent(ctx *Context) {
	pl.agents[ctx.id] = ctx
	i := sort.Search(len(pl.sorted), func(i int) bool { return !pl.sorted[i].id.Less(ctx.id) })
	pl.sorted = append(pl.sorted, nil)
	copy(pl.sorted[i+1:], pl.sorted[i:])
	pl.sorted[i] = ctx
}

// removeAgent unregisters a resident from both structures.
func (pl *Place) removeAgent(id ID) {
	delete(pl.agents, id)
	i := sort.Search(len(pl.sorted), func(i int) bool { return !pl.sorted[i].id.Less(id) })
	if i < len(pl.sorted) && pl.sorted[i].id == id {
		pl.sorted = append(pl.sorted[:i], pl.sorted[i+1:]...)
	}
}

// Node returns the place's node ID.
func (pl *Place) Node() runtime.NodeID { return pl.node }

// SetDeathListener registers the co-located server's agent-death handler.
func (pl *Place) SetDeathListener(l DeathListener) { pl.deaths = l }

// Residents returns the IDs of the agents currently at the place.
func (pl *Place) Residents() []ID {
	out := make([]ID, 0, len(pl.agents))
	for id := range pl.agents {
		out = append(out, id)
	}
	return out
}

// NotifyResidents invokes OnLocalEvent(ev) on every agent currently at the
// place. The resident set is snapshotted first, so handlers may migrate or
// dispose agents freely.
func (pl *Place) NotifyResidents(ev any) {
	// Snapshot the ID-ordered resident index (handlers may migrate or
	// dispose agents, mutating it mid-walk). Reuse the snapshot buffer
	// across notifications (they are frequent and single-threaded);
	// steal it for the duration so a re-entrant notify from inside a
	// handler allocates its own rather than clobbering ours.
	snapshot := append(pl.scratch[:0], pl.sorted...)
	pl.scratch = nil
	for _, ctx := range snapshot {
		if ctx.state == stateActive && pl.agents[ctx.id] == ctx {
			ctx.behavior.OnLocalEvent(ctx, ev)
		}
	}
	clear(snapshot)
	pl.scratch = snapshot[:0]
}

// receiveWire lands a serialized agent from another process: reconstruct
// the behavior, activate it, and acknowledge the origin. Duplicate
// deliveries (a retransmitted envelope racing its own ack) are refused —
// the resident incarnation wins — but re-acked, since the origin clearly
// missed the first ack.
func (pl *Place) receiveWire(from runtime.NodeID, env *WireEnvelope) {
	p := pl.platform
	ack := func() { p.ackMigration(pl.node, from, env.ID, env.Hop) }
	if _, live := pl.agents[env.ID]; live {
		p.stats.MigrationsRefused++
		ack()
		return
	}
	if p.cfg.ThawWire == nil {
		p.stats.MigrationsRefused++
		return
	}
	b, err := p.cfg.ThawWire(env.ID, env.State)
	if err != nil {
		p.stats.MigrationsRefused++
		return
	}
	ctx := &Context{platform: p, behavior: b, id: env.ID, node: pl.node, hop: env.Hop, state: stateActive}
	pl.addAgent(ctx)
	p.stats.MigrationsCompleted++
	p.cfg.Trace.Addf(int64(p.eng.Now()), int(pl.node), env.ID.String(), trace.AgentArrived, "")
	ack()
	b.OnArrive(ctx)
}

// ackMigration acknowledges a landed (or refused-duplicate) wire migration
// to its origin: immediately in its own frame by default, or deferred into
// a per-origin batch when ack aggregation is on. The deferral is bounded
// by AckFlushDelay/AckFlushMax, both far inside the origin's migration
// timeout, so a batched ack is indistinguishable from a slightly slower
// network.
func (p *Platform) ackMigration(at, origin runtime.NodeID, id ID, hop uint64) {
	if p.cfg.AckFlushDelay <= 0 {
		p.net.Send(runtime.Message{From: at, To: origin, Payload: &MigrateAck{ID: id, Hop: hop}, Size: migrateAckSize})
		return
	}
	p.ackbuf[origin] = append(p.ackbuf[origin], MigrateAck{ID: id, Hop: hop})
	p.ackCount++
	if p.ackCount >= p.cfg.AckFlushMax {
		p.flushAcks(at)
		return
	}
	if !p.ackTimer.Active() {
		p.ackTimer = p.eng.AfterFunc(p.cfg.AckFlushDelay, func() { p.flushAcks(at) })
	}
}

// flushAcks sends every batched ack, one MigrateAckBatch per origin.
func (p *Platform) flushAcks(at runtime.NodeID) {
	p.ackTimer.Cancel()
	p.ackCount = 0
	for origin, acks := range p.ackbuf {
		if len(acks) == 0 {
			continue
		}
		batch := &MigrateAckBatch{Acks: acks}
		p.stats.AckBatchesSent++
		p.stats.AcksBatched += len(acks)
		p.net.Send(runtime.Message{
			From: at, To: origin, Payload: batch,
			Size: 16 + migrateAckSize*len(acks),
		})
		delete(p.ackbuf, origin)
	}
}

// migrateAcked closes out a wire migration at the origin: the destination
// has the agent, so the origin's copy is retired. If the migration timeout
// already fired (the ack was slow), the locally re-activated copy stands —
// the documented duplicate-agent hazard of at-least-once migration, kept
// rare by setting MigrationTimeout well above the fabric's retry horizon.
//
// Acks are cumulative per agent (invariant 13): hop covers every migration
// up to and including it, so an ack at least as new as the pending entry
// clears it, while a stale re-ack — the destination re-acknowledging a
// duplicate envelope from an earlier visit — is inert instead of falsely
// retiring a newer in-flight migration.
func (p *Platform) migrateAcked(id ID, hop uint64) {
	pm, ok := p.pending[id]
	if !ok {
		return
	}
	if hop < pm.hop {
		p.stats.StaleAcksIgnored++
		return
	}
	delete(p.pending, id)
	pm.timer.Cancel()
	pm.ctx.state = stateDeparted
	if p.cfg.OnDeparted != nil {
		p.cfg.OnDeparted(id)
	}
}

// receive lands a migrating agent.
func (pl *Place) receive(env *envelope) {
	p := pl.platform
	pm, ok := p.pending[env.id]
	if !ok {
		// The origin already timed out and re-activated the agent (or
		// declared it dead); refuse the late arrival.
		p.stats.MigrationsRefused++
		return
	}
	delete(p.pending, env.id)
	pm.timer.Cancel()
	ctx := pm.ctx
	ctx.node = pl.node
	ctx.state = stateActive
	pl.addAgent(ctx)
	p.stats.MigrationsCompleted++
	p.cfg.Trace.Addf(int64(p.eng.Now()), int(pl.node), ctx.id.String(), trace.AgentArrived, "")
	ctx.behavior.OnArrive(ctx)
}

// deliverToAgent routes a network message to a resident agent.
func (pl *Place) deliverToAgent(from runtime.NodeID, m *AgentMsg) {
	ctx, ok := pl.agents[m.Target]
	if !ok || ctx.state != stateActive {
		pl.platform.stats.AgentMsgsDropped++
		return
	}
	pl.platform.stats.AgentMsgsDelivered++
	ctx.behavior.OnMessage(ctx, from, m.Payload)
}

type agentState int

const (
	stateActive agentState = iota
	stateInTransit
	stateDisposed
	stateDead
	stateDeparted // wire migration acked: the live copy is elsewhere
)

// Context is an agent's handle onto the platform. One Context accompanies
// the agent for its whole life; Node reports its current location.
type Context struct {
	platform *Platform
	behavior Behavior
	id       ID
	node     runtime.NodeID
	hop      uint64 // migrations completed so far; stamps wire envelopes
	state    agentState
}

// ID returns the agent's identifier.
func (c *Context) ID() ID { return c.id }

// Node returns the agent's current location.
func (c *Context) Node() runtime.NodeID { return c.node }

// Now returns the current virtual time.
func (c *Context) Now() runtime.Time { return c.platform.eng.Now() }

// Rand returns the simulation's seeded random source.
func (c *Context) Rand() *rand.Rand { return c.platform.eng.Rand() }

// After schedules fn on the engine clock; the agent's own timer facility.
// fn is not invoked if the agent has been disposed, departed over the wire,
// or died in the meantime.
func (c *Context) After(d time.Duration, fn func()) runtime.Timer {
	return c.platform.eng.AfterFunc(d, func() {
		if c.state == stateDisposed || c.state == stateDead || c.state == stateDeparted {
			return
		}
		fn()
	})
}

// Cost returns the topology cost of travelling from the agent's current
// node to another node — the routing-table information the local server
// provides to visiting agents (paper §3.2).
func (c *Context) Cost(to runtime.NodeID) float64 {
	return c.platform.net.Cost(c.node, to)
}

// Alive reports whether the agent is active or migrating (not disposed).
func (c *Context) Alive() bool { return c.state == stateActive || c.state == stateInTransit }

func (c *Context) wireSize() int {
	if s, ok := c.behavior.(WireSizer); ok {
		return s.WireSize()
	}
	return DefaultAgentSize
}

// MigrateTo detaches the agent from its current place and ships it to dest.
// On success OnArrive fires at dest after the network latency; if the
// envelope is lost (destination down or partitioned), OnMigrateFailed fires
// at the origin after the platform's migration timeout and the agent is
// active at the origin again.
func (c *Context) MigrateTo(dest runtime.NodeID) {
	if c.state != stateActive {
		panic(fmt.Sprintf("agent %v: MigrateTo while not active (state %d)", c.id, c.state))
	}
	if dest == c.node {
		panic(fmt.Sprintf("agent %v: MigrateTo current node %d", c.id, dest))
	}
	p := c.platform
	origin := c.node
	pl := p.places[origin]
	pl.removeAgent(c.id)
	c.state = stateInTransit
	p.stats.MigrationsStarted++
	p.cfg.Trace.Addf(int64(p.eng.Now()), int(origin), c.id.String(), trace.AgentMigrate, "-> S%d", dest)

	c.hop++
	timer := p.eng.AfterFunc(p.cfg.MigrationTimeout, func() {
		pm, ok := p.pending[c.id]
		if !ok {
			return // landed in time
		}
		delete(p.pending, c.id)
		// Re-activate at the origin. If the origin itself crashed while
		// the agent was in transit, the agent is lost: no place can take
		// it back. The lost handler may claim it for regeneration;
		// otherwise death notices flow as for any other death.
		if p.net.Down(origin) {
			c.state = stateDead
			p.stats.AgentsKilled++
			p.cfg.Trace.Addf(int64(p.eng.Now()), int(origin), c.id.String(), trace.AgentDied, "origin crashed during failed migration")
			if p.cfg.LostHandler != nil && p.cfg.LostHandler(c.id, c.behavior) {
				return
			}
			p.AnnounceDeaths([]ID{c.id})
			return
		}
		c.node = origin
		c.state = stateActive
		p.places[origin].addAgent(c)
		p.stats.MigrationsFailed++
		p.cfg.Trace.Addf(int64(p.eng.Now()), int(origin), c.id.String(), trace.AgentBlocked, "dest S%d unreachable", pm.dest)
		c.behavior.OnMigrateFailed(c, pm.dest)
	})
	p.pending[c.id] = &pendingMigration{ctx: c, dest: dest, hop: c.hop, timer: timer}
	payload, size := c.migrationPayload()
	p.net.Send(runtime.Message{
		From:    origin,
		To:      dest,
		Payload: payload,
		Size:    size,
	})
}

// migrationPayload picks the migration encoding for the platform's fabric:
// a live pointer within one address space, serialized state across
// processes. Failure to serialize is a programming error (a behavior
// lacking WireBehavior has no business on a wire platform), not a runtime
// condition to recover from.
func (c *Context) migrationPayload() (any, int) {
	if !c.platform.wire {
		return &envelope{id: c.id, behavior: c.behavior}, c.wireSize()
	}
	wb, ok := c.behavior.(WireBehavior)
	if !ok {
		panic(fmt.Sprintf("agent %v: behavior %T cannot migrate over a serializing fabric", c.id, c.behavior))
	}
	state, err := wb.MarshalWire()
	if err != nil {
		panic(fmt.Sprintf("agent %v: marshal for migration: %v", c.id, err))
	}
	return &WireEnvelope{ID: c.id, Hop: c.hop, State: state}, len(state)
}

// Send transmits a payload to the server process at node to (paying network
// latency). size is the modelled wire size.
func (c *Context) Send(to runtime.NodeID, payload any, size int) {
	if c.state != stateActive {
		return
	}
	c.platform.net.Send(runtime.Message{From: c.node, To: to, Payload: payload, Size: size})
}

// SendToAgent transmits a payload to another agent believed to be at node to.
func (c *Context) SendToAgent(to runtime.NodeID, target ID, payload any, size int) {
	if c.state != stateActive {
		return
	}
	c.platform.net.Send(runtime.Message{
		From: c.node, To: to,
		Payload: &AgentMsg{Target: target, Payload: payload},
		Size:    size,
	})
}

// Dispose terminates the agent (paper Algorithm 1's final "dispose").
func (c *Context) Dispose() {
	if c.state != stateActive {
		return
	}
	p := c.platform
	p.places[c.node].removeAgent(c.id)
	c.state = stateDisposed
	p.stats.AgentsDisposed++
	p.cfg.Trace.Addf(int64(p.eng.Now()), int(c.node), c.id.String(), trace.AgentDisposed, "")
}

// SendToServer lets non-agent code (a server) message another node's server
// through the same accounting path. It exists so servers do not need their
// own network facade.
func (p *Platform) SendToServer(from, to runtime.NodeID, payload any, size int) {
	p.net.Send(runtime.Message{From: from, To: to, Payload: payload, Size: size})
}

// SendToAgent lets a server reply to an agent at a (node, ID) address.
func (p *Platform) SendToAgent(from, to runtime.NodeID, target ID, payload any, size int) {
	p.net.Send(runtime.Message{
		From: from, To: to,
		Payload: &AgentMsg{Target: target, Payload: payload},
		Size:    size,
	})
}
