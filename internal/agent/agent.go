// Package agent emulates a mobile-agent platform (the role IBM Aglets plays
// in the paper's prototype) on top of the simulated network.
//
// Go has no code mobility, so "migration" here is state mobility: an agent
// is a Go value implementing Behavior; migrating it serializes nothing in
// the simulator (the value moves between places directly, with a modelled
// wire size for traffic accounting) and uses encoding/gob in the real TCP
// transport. This preserves everything the protocol layer observes: an agent
// executes at one place at a time, interacts with the co-located server at
// memory speed, pays network latency to move, and can fail to migrate when
// the destination is down.
//
// The platform also provides the failure-notification service the paper
// assumes ("when a process fails, all other processes are informed of the
// failure in a finite time"): when a host crashes, agents resident there die
// with it, and every surviving node receives an agent-death notice after a
// configurable detection delay.
package agent

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/des"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// ID identifies a mobile agent. The paper forms agent identifiers from the
// creating host's name plus the local creation time; ID mirrors that with
// the home server's node ID and the virtual creation time, plus a sequence
// number to disambiguate agents born in the same instant.
type ID struct {
	Home simnet.NodeID
	Born int64 // virtual creation time, nanoseconds
	Seq  uint64
}

// IsZero reports whether the ID is unset.
func (id ID) IsZero() bool { return id == ID{} }

// Less defines the total order used for tie-breaking (paper §3.3: ties are
// resolved "by using the mobile agents' identifiers"). Earlier-born agents
// order first; the home node and sequence number break exact ties.
func (id ID) Less(o ID) bool {
	if id.Born != o.Born {
		return id.Born < o.Born
	}
	if id.Home != o.Home {
		return id.Home < o.Home
	}
	return id.Seq < o.Seq
}

// String renders the ID compactly, e.g. "A3.17".
func (id ID) String() string { return fmt.Sprintf("A%d.%d", id.Home, id.Seq) }

// Behavior is the agent's program. All hooks run on the simulator's event
// loop; they may freely call Context methods, including MigrateTo and
// Dispose, from inside any hook.
type Behavior interface {
	// OnArrive runs when the agent is activated at a place: once at
	// creation on its home node, then after every successful migration.
	OnArrive(ctx *Context)
	// OnMigrateFailed runs at the origin place when a migration to dest
	// could not complete within the platform's migration timeout. The
	// agent is active again at its origin.
	OnMigrateFailed(ctx *Context, dest simnet.NodeID)
	// OnMessage delivers a network message addressed to this agent.
	OnMessage(ctx *Context, from simnet.NodeID, payload any)
	// OnLocalEvent delivers a zero-latency notification from the
	// co-located server (e.g. "locking list changed").
	OnLocalEvent(ctx *Context, ev any)
}

// WireSizer lets a behavior report its modelled serialized size in bytes;
// migrations of agents without it are accounted at DefaultAgentSize.
type WireSizer interface{ WireSize() int }

// DefaultAgentSize is the modelled wire size of an agent whose behavior does
// not implement WireSizer.
const DefaultAgentSize = 512

// DeathListener is notified when an agent is known to have died (its host
// crashed, or it was lost in transit to a crashing host). Servers register
// one to evict dead agents' lock entries.
type DeathListener interface {
	OnAgentDeath(id ID)
}

// Stats aggregates platform counters.
type Stats struct {
	AgentsCreated       int
	AgentsDisposed      int
	AgentsKilled        int // died with a crashed host or in transit to one
	AgentsRegenerated   int // respawned from a checkpoint after being lost
	MigrationsStarted   int
	MigrationsCompleted int
	MigrationsFailed    int // timed out, agent re-activated at origin
	MigrationsRefused   int // envelope arrived after the origin timed out
	AgentMsgsDelivered  int
	AgentMsgsDropped    int
}

// Config carries platform tuning knobs.
type Config struct {
	// MigrationTimeout is how long the origin waits for a migration to
	// land before re-activating the agent locally (paper §2: "if a mobile
	// agent cannot migrate to a replicated server host after certain
	// amount of time, the protocol assumes that the replica process at
	// the host has temporarily failed").
	MigrationTimeout time.Duration
	// DeathNoticeDelay is how long after an agent's death the other nodes
	// learn about it.
	DeathNoticeDelay time.Duration
	// LostHandler, if non-nil, is consulted when an agent is lost in
	// transit (its origin crashed while it was migrating, so no place can
	// re-activate it). Returning true claims the loss — the caller will
	// regenerate the agent under its original ID, so the platform must NOT
	// announce the death (a tombstone for the reused ID would make every
	// server reject the reborn agent). Returning false lets the normal
	// death notices flow.
	LostHandler func(id ID, b Behavior) bool
	// Trace, if non-nil, receives platform events.
	Trace *trace.Log
}

func (c *Config) fill() {
	if c.MigrationTimeout <= 0 {
		c.MigrationTimeout = 250 * time.Millisecond
	}
	if c.DeathNoticeDelay <= 0 {
		c.DeathNoticeDelay = 100 * time.Millisecond
	}
}

// Platform hosts mobile agents across the nodes of a simulated network.
// The fabric may be a bare *simnet.Network or the ack/retransmit layer in
// internal/reliable; the platform is agnostic.
type Platform struct {
	net    simnet.Fabric
	sim    *des.Simulator
	cfg    Config
	places map[simnet.NodeID]*Place
	// pending tracks in-flight migrations by agent ID; the destination
	// place removes the entry when the envelope lands, the timeout fires
	// only if it is still present.
	pending map[ID]*pendingMigration
	seq     uint64
	stats   Stats
}

type pendingMigration struct {
	ctx   *Context
	dest  simnet.NodeID
	timer des.Timer
}

// wire payloads
type envelope struct {
	id       ID
	behavior Behavior
}

func (envelope) Kind() string { return "agent-migrate" }

type agentMsg struct {
	target  ID
	payload any
}

func (agentMsg) Kind() string { return "agent-msg" }

// NewPlatform creates a platform over net.
func NewPlatform(net simnet.Fabric, cfg Config) *Platform {
	cfg.fill()
	return &Platform{
		net:     net,
		sim:     net.Sim(),
		cfg:     cfg,
		places:  make(map[simnet.NodeID]*Place),
		pending: make(map[ID]*pendingMigration),
	}
}

// Stats returns a copy of the platform counters.
func (p *Platform) Stats() Stats { return p.stats }

// Host creates the agent place at node and attaches a demultiplexing handler
// to the network: agent-platform payloads are consumed by the place, all
// other messages flow to server (which may be nil for agent-only nodes).
func (p *Platform) Host(node simnet.NodeID, server simnet.Handler) *Place {
	if _, dup := p.places[node]; dup {
		panic(fmt.Sprintf("agent: node %d already hosted", node))
	}
	pl := &Place{platform: p, node: node, agents: make(map[ID]*Context)}
	p.places[node] = pl
	p.net.Attach(node, simnet.HandlerFunc(func(msg simnet.Message) {
		switch payload := msg.Payload.(type) {
		case *envelope:
			pl.receive(payload)
		case *agentMsg:
			pl.deliverToAgent(msg.From, payload)
		default:
			if server != nil {
				server.Deliver(msg)
			}
		}
	}))
	return pl
}

// Place returns the place at node, or nil if the node is not hosted.
func (p *Platform) Place(node simnet.NodeID) *Place { return p.places[node] }

// Spawn creates and activates an agent at its home node, invoking OnArrive.
func (p *Platform) Spawn(home simnet.NodeID, b Behavior) *Context {
	pl := p.places[home]
	if pl == nil {
		panic(fmt.Sprintf("agent: spawning on unhosted node %d", home))
	}
	p.seq++
	ctx := &Context{
		platform: p,
		behavior: b,
		id:       ID{Home: home, Born: int64(p.sim.Now()), Seq: p.seq},
		node:     home,
	}
	pl.agents[ctx.id] = ctx
	p.stats.AgentsCreated++
	p.cfg.Trace.Addf(int64(p.sim.Now()), int(home), ctx.id.String(), trace.AgentCreated, "")
	b.OnArrive(ctx)
	return ctx
}

// Respawn activates a regenerated agent at home under its original ID.
// Theorem 2's tie-breaking is identifier-based, so the reborn agent must
// keep its old identity (and with it its queue priority). The caller
// guarantees the previous incarnation is dead and that no death notice was
// sent for the reused ID.
func (p *Platform) Respawn(home simnet.NodeID, b Behavior, id ID) *Context {
	pl := p.places[home]
	if pl == nil {
		panic(fmt.Sprintf("agent: respawning on unhosted node %d", home))
	}
	if _, live := pl.agents[id]; live {
		panic(fmt.Sprintf("agent: respawn of live agent %v", id))
	}
	ctx := &Context{
		platform: p,
		behavior: b,
		id:       id,
		node:     home,
	}
	pl.agents[id] = ctx
	p.stats.AgentsRegenerated++
	p.cfg.Trace.Addf(int64(p.sim.Now()), int(home), id.String(), trace.AgentRegen, "")
	b.OnArrive(ctx)
	return ctx
}

// Casualty is an agent killed by a host crash: its identity plus the
// behavior value that died with it (callers regenerate from checkpoints, not
// from the dead behavior, but the value is useful for bookkeeping).
type Casualty struct {
	ID       ID
	Behavior Behavior
}

// KillResidents disposes every agent currently at node (because the node
// crashed) and schedules death notices to all hosted nodes. It returns the
// IDs of the killed agents.
func (p *Platform) KillResidents(node simnet.NodeID) []ID {
	cs := p.TakeResidents(node)
	ids := make([]ID, len(cs))
	for i, c := range cs {
		ids[i] = c.ID
	}
	p.AnnounceDeaths(ids)
	return ids
}

// TakeResidents kills every agent currently at node WITHOUT announcing the
// deaths, returning the casualties in deterministic (ID) order. The caller
// decides each agent's fate: regenerate it from a checkpoint (no death
// notice — the reused ID must not be tombstoned) or pass its ID to
// AnnounceDeaths.
func (p *Platform) TakeResidents(node simnet.NodeID) []Casualty {
	pl := p.places[node]
	if pl == nil {
		return nil
	}
	var killed []Casualty
	for id, ctx := range pl.agents {
		ctx.state = stateDead
		delete(pl.agents, id)
		killed = append(killed, Casualty{ID: id, Behavior: ctx.behavior})
		p.stats.AgentsKilled++
		p.cfg.Trace.Addf(int64(p.sim.Now()), int(node), id.String(), trace.AgentDied, "host crashed")
	}
	for i := 1; i < len(killed); i++ {
		for j := i; j > 0 && killed[j].ID.Less(killed[j-1].ID); j-- {
			killed[j], killed[j-1] = killed[j-1], killed[j]
		}
	}
	// Agents in flight toward the crashing node will be handled by their
	// origin's migration timeout; agents in flight *from* it already left.
	return killed
}

// AnnounceDeaths schedules OnAgentDeath at every hosted node's registered
// listener after the detection delay.
func (p *Platform) AnnounceDeaths(ids []ID) {
	if len(ids) == 0 {
		return
	}
	for _, pl := range p.places {
		pl := pl
		p.sim.After(p.cfg.DeathNoticeDelay, func() {
			if pl.deaths == nil {
				return
			}
			for _, id := range ids {
				pl.deaths.OnAgentDeath(id)
			}
		})
	}
}

// Place is the agent habitat on one node.
type Place struct {
	platform *Platform
	node     simnet.NodeID
	agents   map[ID]*Context
	deaths   DeathListener
}

// Node returns the place's node ID.
func (pl *Place) Node() simnet.NodeID { return pl.node }

// SetDeathListener registers the co-located server's agent-death handler.
func (pl *Place) SetDeathListener(l DeathListener) { pl.deaths = l }

// Residents returns the IDs of the agents currently at the place.
func (pl *Place) Residents() []ID {
	out := make([]ID, 0, len(pl.agents))
	for id := range pl.agents {
		out = append(out, id)
	}
	return out
}

// NotifyResidents invokes OnLocalEvent(ev) on every agent currently at the
// place. The resident set is snapshotted first, so handlers may migrate or
// dispose agents freely.
func (pl *Place) NotifyResidents(ev any) {
	snapshot := make([]*Context, 0, len(pl.agents))
	for _, ctx := range pl.agents {
		snapshot = append(snapshot, ctx)
	}
	// Deterministic order: by agent ID.
	for i := 1; i < len(snapshot); i++ {
		for j := i; j > 0 && snapshot[j].id.Less(snapshot[j-1].id); j-- {
			snapshot[j], snapshot[j-1] = snapshot[j-1], snapshot[j]
		}
	}
	for _, ctx := range snapshot {
		if ctx.state == stateActive && pl.agents[ctx.id] == ctx {
			ctx.behavior.OnLocalEvent(ctx, ev)
		}
	}
}

// receive lands a migrating agent.
func (pl *Place) receive(env *envelope) {
	p := pl.platform
	pm, ok := p.pending[env.id]
	if !ok {
		// The origin already timed out and re-activated the agent (or
		// declared it dead); refuse the late arrival.
		p.stats.MigrationsRefused++
		return
	}
	delete(p.pending, env.id)
	pm.timer.Cancel()
	ctx := pm.ctx
	ctx.node = pl.node
	ctx.state = stateActive
	pl.agents[ctx.id] = ctx
	p.stats.MigrationsCompleted++
	p.cfg.Trace.Addf(int64(p.sim.Now()), int(pl.node), ctx.id.String(), trace.AgentArrived, "")
	ctx.behavior.OnArrive(ctx)
}

// deliverToAgent routes a network message to a resident agent.
func (pl *Place) deliverToAgent(from simnet.NodeID, m *agentMsg) {
	ctx, ok := pl.agents[m.target]
	if !ok || ctx.state != stateActive {
		pl.platform.stats.AgentMsgsDropped++
		return
	}
	pl.platform.stats.AgentMsgsDelivered++
	ctx.behavior.OnMessage(ctx, from, m.payload)
}

type agentState int

const (
	stateActive agentState = iota
	stateInTransit
	stateDisposed
	stateDead
)

// Context is an agent's handle onto the platform. One Context accompanies
// the agent for its whole life; Node reports its current location.
type Context struct {
	platform *Platform
	behavior Behavior
	id       ID
	node     simnet.NodeID
	state    agentState
}

// ID returns the agent's identifier.
func (c *Context) ID() ID { return c.id }

// Node returns the agent's current location.
func (c *Context) Node() simnet.NodeID { return c.node }

// Now returns the current virtual time.
func (c *Context) Now() des.Time { return c.platform.sim.Now() }

// Rand returns the simulation's seeded random source.
func (c *Context) Rand() *rand.Rand { return c.platform.sim.Rand() }

// After schedules fn on the simulator; the agent's own timer facility.
// fn is not invoked if the agent has been disposed or died in the meantime.
func (c *Context) After(d time.Duration, fn func()) des.Timer {
	return c.platform.sim.After(d, func() {
		if c.state == stateDisposed || c.state == stateDead {
			return
		}
		fn()
	})
}

// Cost returns the topology cost of travelling from the agent's current
// node to another node — the routing-table information the local server
// provides to visiting agents (paper §3.2).
func (c *Context) Cost(to simnet.NodeID) float64 {
	return c.platform.net.Cost(c.node, to)
}

// Alive reports whether the agent is active or migrating (not disposed).
func (c *Context) Alive() bool { return c.state == stateActive || c.state == stateInTransit }

func (c *Context) wireSize() int {
	if s, ok := c.behavior.(WireSizer); ok {
		return s.WireSize()
	}
	return DefaultAgentSize
}

// MigrateTo detaches the agent from its current place and ships it to dest.
// On success OnArrive fires at dest after the network latency; if the
// envelope is lost (destination down or partitioned), OnMigrateFailed fires
// at the origin after the platform's migration timeout and the agent is
// active at the origin again.
func (c *Context) MigrateTo(dest simnet.NodeID) {
	if c.state != stateActive {
		panic(fmt.Sprintf("agent %v: MigrateTo while not active (state %d)", c.id, c.state))
	}
	if dest == c.node {
		panic(fmt.Sprintf("agent %v: MigrateTo current node %d", c.id, dest))
	}
	p := c.platform
	origin := c.node
	pl := p.places[origin]
	delete(pl.agents, c.id)
	c.state = stateInTransit
	p.stats.MigrationsStarted++
	p.cfg.Trace.Addf(int64(p.sim.Now()), int(origin), c.id.String(), trace.AgentMigrate, "-> S%d", dest)

	timer := p.sim.After(p.cfg.MigrationTimeout, func() {
		pm, ok := p.pending[c.id]
		if !ok {
			return // landed in time
		}
		delete(p.pending, c.id)
		// Re-activate at the origin. If the origin itself crashed while
		// the agent was in transit, the agent is lost: no place can take
		// it back. The lost handler may claim it for regeneration;
		// otherwise death notices flow as for any other death.
		if p.net.Down(origin) {
			c.state = stateDead
			p.stats.AgentsKilled++
			p.cfg.Trace.Addf(int64(p.sim.Now()), int(origin), c.id.String(), trace.AgentDied, "origin crashed during failed migration")
			if p.cfg.LostHandler != nil && p.cfg.LostHandler(c.id, c.behavior) {
				return
			}
			p.AnnounceDeaths([]ID{c.id})
			return
		}
		c.node = origin
		c.state = stateActive
		p.places[origin].agents[c.id] = c
		p.stats.MigrationsFailed++
		p.cfg.Trace.Addf(int64(p.sim.Now()), int(origin), c.id.String(), trace.AgentBlocked, "dest S%d unreachable", pm.dest)
		c.behavior.OnMigrateFailed(c, pm.dest)
	})
	p.pending[c.id] = &pendingMigration{ctx: c, dest: dest, timer: timer}
	p.net.Send(simnet.Message{
		From:    origin,
		To:      dest,
		Payload: &envelope{id: c.id, behavior: c.behavior},
		Size:    c.wireSize(),
	})
}

// Send transmits a payload to the server process at node to (paying network
// latency). size is the modelled wire size.
func (c *Context) Send(to simnet.NodeID, payload any, size int) {
	if c.state != stateActive {
		return
	}
	c.platform.net.Send(simnet.Message{From: c.node, To: to, Payload: payload, Size: size})
}

// SendToAgent transmits a payload to another agent believed to be at node to.
func (c *Context) SendToAgent(to simnet.NodeID, target ID, payload any, size int) {
	if c.state != stateActive {
		return
	}
	c.platform.net.Send(simnet.Message{
		From: c.node, To: to,
		Payload: &agentMsg{target: target, payload: payload},
		Size:    size,
	})
}

// Dispose terminates the agent (paper Algorithm 1's final "dispose").
func (c *Context) Dispose() {
	if c.state != stateActive {
		return
	}
	p := c.platform
	delete(p.places[c.node].agents, c.id)
	c.state = stateDisposed
	p.stats.AgentsDisposed++
	p.cfg.Trace.Addf(int64(p.sim.Now()), int(c.node), c.id.String(), trace.AgentDisposed, "")
}

// SendToServer lets non-agent code (a server) message another node's server
// through the same accounting path. It exists so servers do not need their
// own network facade.
func (p *Platform) SendToServer(from, to simnet.NodeID, payload any, size int) {
	p.net.Send(simnet.Message{From: from, To: to, Payload: payload, Size: size})
}

// SendToAgent lets a server reply to an agent at a (node, ID) address.
func (p *Platform) SendToAgent(from, to simnet.NodeID, target ID, payload any, size int) {
	p.net.Send(simnet.Message{
		From: from, To: to,
		Payload: &agentMsg{target: target, payload: payload},
		Size:    size,
	})
}
