package agent

import (
	"repro/internal/runtime"
	"repro/internal/wire"
)

// Wire-codec tags for the agent platform's message set (DESIGN.md §11).
// Tags are part of the wire format: never renumber.
const (
	tagWireEnvelope    = 1
	tagMigrateAck      = 2
	tagAgentMsg        = 3
	tagMigrateAckBatch = 4
)

func init() {
	wire.Register(tagWireEnvelope, &WireEnvelope{},
		func(b []byte, v any) []byte {
			m := v.(*WireEnvelope)
			b = AppendID(b, m.ID)
			b = wire.AppendUvarint(b, m.Hop)
			return wire.AppendBytes(b, m.State)
		},
		func(r *wire.Reader) any {
			m := &WireEnvelope{ID: DecodeID(r), Hop: r.Uvarint()}
			// The reader's buffer is reused per frame; the envelope may
			// outlive it (it crosses onto the actor loop), so copy.
			m.State = append([]byte(nil), r.Bytes()...)
			return m
		})
	wire.Register(tagMigrateAck, &MigrateAck{},
		func(b []byte, v any) []byte {
			m := v.(*MigrateAck)
			b = AppendID(b, m.ID)
			return wire.AppendUvarint(b, m.Hop)
		},
		func(r *wire.Reader) any {
			return &MigrateAck{ID: DecodeID(r), Hop: r.Uvarint()}
		})
	wire.Register(tagAgentMsg, &AgentMsg{},
		func(b []byte, v any) []byte {
			m := v.(*AgentMsg)
			b = AppendID(b, m.Target)
			out, err := wire.AppendMessage(b, m.Payload)
			if err != nil {
				// Same contract as migrationPayload: an unencodable nested
				// payload is a programming error, not a runtime condition.
				panic("agent: " + err.Error())
			}
			return out
		},
		func(r *wire.Reader) any {
			m := &AgentMsg{Target: DecodeID(r)}
			payload, err := wire.DecodeMessage(r)
			if err != nil {
				return nil // sticky error already armed on r
			}
			m.Payload = payload
			return m
		})
	wire.Register(tagMigrateAckBatch, &MigrateAckBatch{},
		func(b []byte, v any) []byte {
			m := v.(*MigrateAckBatch)
			b = wire.AppendUvarint(b, uint64(len(m.Acks)))
			for i := range m.Acks {
				b = AppendID(b, m.Acks[i].ID)
				b = wire.AppendUvarint(b, m.Acks[i].Hop)
			}
			return b
		},
		func(r *wire.Reader) any {
			n := r.Count(4)
			m := &MigrateAckBatch{Acks: make([]MigrateAck, 0, n)}
			for i := 0; i < n; i++ {
				m.Acks = append(m.Acks, MigrateAck{ID: DecodeID(r), Hop: r.Uvarint()})
			}
			return m
		})
}

// AppendID appends an agent ID in wire-codec form. Exported because every
// protocol package that embeds agent IDs in its messages shares this
// encoding.
func AppendID(b []byte, id ID) []byte {
	b = wire.AppendVarint(b, int64(id.Home))
	b = wire.AppendVarint(b, id.Born)
	return wire.AppendUvarint(b, id.Seq)
}

// DecodeID reads an agent ID written by AppendID.
func DecodeID(r *wire.Reader) ID {
	return ID{
		Home: runtime.NodeID(r.Varint()),
		Born: r.Varint(),
		Seq:  r.Uvarint(),
	}
}
