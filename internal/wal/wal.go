// Package wal implements the segmented write-ahead log under a replica's
// durable state (DESIGN.md §9).
//
// The log is a sequence of CRC-framed records spread over numbered segment
// files, plus at most one installed snapshot that supersedes every earlier
// record. Layout on the disk.Backend:
//
//	snap-<gen>.snap            installed state snapshot (atomic rename)
//	wal-<gen>-<k>.seg          record segments written after that snapshot
//
// Every snapshot starts a new generation: segments of older generations
// are garbage from the moment the snapshot's rename lands, so a crash
// between "install snapshot" and "delete old segments" is harmless — Open
// ignores (and deletes) segments whose generation does not match the
// newest valid snapshot.
//
// Record frame: 4-byte little-endian payload length, 4-byte CRC-32C over
// type+payload, 1 type byte, payload. A torn tail — a partial or
// CRC-corrupt frame at the end of the *last* segment — is tolerated on
// replay: it is exactly what a crash mid-append leaves behind. Open
// truncates the segment back to its valid prefix (so the garbage can never
// be mistaken for mid-log corruption by a later Open, after this segment is
// no longer last) and resumes writing in a fresh segment. The same damage
// anywhere else is real corruption and fails Open.
//
// Fsync policy is configurable per the classic durability/throughput
// trade-off: every append, only at commit barriers, or never (the OS page
// cache decides). The policy is honest on both backends: disk.Mem drops
// unsynced bytes on Crash, so a simulated power cut under PolicyNone loses
// exactly what a real one would.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/disk"
)

// Policy selects when appends reach stable storage.
type Policy int

const (
	// PolicyCommit fsyncs only on records marked as commit barriers (and
	// on explicit Sync/Close). The default: uncommitted tail records may
	// be lost in a crash, acknowledged commits may not.
	PolicyCommit Policy = iota
	// PolicyAlways fsyncs every append.
	PolicyAlways
	// PolicyNone never fsyncs on the append path; only Sync/Close do.
	PolicyNone
)

// ParsePolicy maps the -fsync flag spellings to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(s) {
	case "commit", "":
		return PolicyCommit, nil
	case "always":
		return PolicyAlways, nil
	case "none":
		return PolicyNone, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, commit, or none)", s)
}

func (p Policy) String() string {
	switch p {
	case PolicyAlways:
		return "always"
	case PolicyNone:
		return "none"
	default:
		return "commit"
	}
}

// Record is one logged entry. Type is owned by the caller (internal/durable
// defines the replica's vocabulary); the WAL only frames and checksums.
type Record struct {
	Type byte
	Data []byte
}

// Options tunes a log.
type Options struct {
	// Policy is the fsync policy (default PolicyCommit).
	Policy Policy
	// SegmentBytes rotates to a new segment once the current one reaches
	// this size (default 1 MiB).
	SegmentBytes int
	// GroupCommitDelay enables group commit under PolicyCommit: an
	// AppendBarrier parks its completion callback instead of fsyncing
	// immediately, and after at most this delay one fsync covers every
	// barrier that accumulated (200µs is a good starting point). Zero — the
	// default — keeps the synchronous fsync-per-barrier path.
	GroupCommitDelay time.Duration
	// Scheduler runs fn after d, for the group-commit flush. Nil uses
	// time.AfterFunc; tests inject a manual scheduler to pump flushes
	// deterministically.
	Scheduler func(d time.Duration, fn func())
	// OnSync, if non-nil, observes the wall-clock duration of every
	// successful segment fsync (the ops plane feeds these into the
	// marp.wal.fsync_seconds histogram). Called with the log's lock held;
	// the observer must not call back into the log.
	OnSync func(d time.Duration)
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 1 << 20
	}
	if o.Scheduler == nil {
		o.Scheduler = func(d time.Duration, fn func()) { time.AfterFunc(d, fn) }
	}
	return o
}

// Stats counts the log's work.
type Stats struct {
	Appends       int
	AppendedBytes int
	Syncs         int
	Rotations     int
	Snapshots     int
	// Replayed is the number of records decoded by Open.
	Replayed int
	// TailDropped is the number of torn-tail bytes Open tolerated.
	TailDropped int
	// GroupBatches counts fsyncs that covered parked group-commit barriers;
	// GroupBarriers counts the barriers covered. Their ratio is the mean
	// coalescing factor.
	GroupBatches  int
	GroupBarriers int
}

// ErrCorrupt reports a damaged record before the tail — data the log once
// acknowledged and can no longer produce.
var ErrCorrupt = errors.New("wal: corrupt record before log tail")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const frameHeader = 9 // 4 len + 4 crc + 1 type

// Log is an open write-ahead log. Safe for concurrent use: the owner
// drives it from the engine's single execution context, but with group
// commit enabled the flush also fires from a scheduler goroutine, so every
// entry point takes the log's mutex.
type Log struct {
	mu      sync.Mutex
	b       disk.Backend
	opts    Options
	gen     uint64
	seg     int // index of the open segment within gen
	segSize int
	out     disk.File
	dirty   bool // bytes appended since the last sync
	stats   Stats

	// Group-commit state: parked completion callbacks, whether a flush is
	// scheduled, and the sticky error that — once a covering fsync has
	// failed — guarantees no parked caller is ever told its record is
	// durable.
	parked   []func()
	armed    bool
	groupErr error
}

// Open replays the log on b and returns the handle, the newest installed
// snapshot (nil if none), and the records appended after it, in order. A
// torn tail is tolerated and dropped; corruption anywhere else fails.
func Open(b disk.Backend, opts Options) (*Log, []byte, []Record, error) {
	l := &Log{b: b, opts: opts.withDefaults()}
	names, err := b.List()
	if err != nil {
		return nil, nil, nil, fmt.Errorf("wal: listing backend: %w", err)
	}
	snap, gen, stale, err := newestSnapshot(b, names)
	if err != nil {
		return nil, nil, nil, err
	}
	l.gen = gen
	segs := segments(names, gen)
	for _, name := range names {
		var g uint64
		var k int
		if parseSeg(name, &g, &k) && g != gen {
			stale = append(stale, name) // superseded generation's segments
		}
	}
	var records []Record
	for i, s := range segs {
		recs, valid, dropped, err := readSegment(b, s.name, i == len(segs)-1)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("wal: %s: %w", s.name, err)
		}
		records = append(records, recs...)
		if dropped > 0 {
			// Cut the torn bytes off durably: on the next Open this segment
			// is no longer last, and an un-truncated tail would read as real
			// corruption and permanently refuse to start.
			if err := b.Truncate(s.name, valid); err != nil {
				return nil, nil, nil, fmt.Errorf("wal: truncating torn tail of %s: %w", s.name, err)
			}
		}
		l.stats.TailDropped += dropped
	}
	l.stats.Replayed = len(records)
	// Writes resume in a fresh segment: a tolerated torn tail stays dead.
	l.seg = nextSegIndex(segs)
	if err := l.openSegment(); err != nil {
		return nil, nil, nil, err
	}
	// Stale generations and superseded snapshots are garbage from before
	// a crash interrupted compaction; finish the job.
	for _, name := range stale {
		if err := b.Remove(name); err != nil {
			return nil, nil, nil, fmt.Errorf("wal: removing stale %s: %w", name, err)
		}
	}
	return l, snap, records, nil
}

// Append frames and writes rec. commit marks a durability barrier: under
// PolicyCommit the write (and everything before it) is fsynced.
func (l *Log) Append(rec Record, commit bool) error {
	l.mu.Lock()
	cbs, err := l.appendLocked(rec, commit, nil)
	l.mu.Unlock()
	fire(cbs)
	return err
}

// AppendBarrier is Append for a commit barrier whose caller can defer its
// side effects: done fires exactly when the record is covered by an fsync
// (given the policy — under PolicyNone "covered" is the policy's usual
// fiction and done fires immediately). With group commit enabled, done
// parks and one later fsync covers every parked barrier; a nil return then
// means "accepted", not "durable". If the covering fsync fails, done never
// fires and every subsequent append returns the sticky error — a parked
// caller is never told a record the fsync didn't cover is safe.
func (l *Log) AppendBarrier(rec Record, commit bool, done func()) error {
	l.mu.Lock()
	cbs, err := l.appendLocked(rec, commit, done)
	l.mu.Unlock()
	fire(cbs)
	return err
}

// appendLocked writes one record and resolves its durability: the returned
// callbacks (the caller's own done and/or parked barriers drained by a
// covering sync) must be fired after the lock is released.
func (l *Log) appendLocked(rec Record, commit bool, done func()) ([]func(), error) {
	if l.groupErr != nil {
		return nil, l.groupErr
	}
	frame := make([]byte, frameHeader+len(rec.Data))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(rec.Data)))
	frame[8] = rec.Type
	copy(frame[frameHeader:], rec.Data)
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(frame[8:], castagnoli))
	if _, err := l.out.Write(frame); err != nil {
		return nil, fmt.Errorf("wal: append: %w", err)
	}
	l.dirty = true
	l.segSize += len(frame)
	l.stats.Appends++
	l.stats.AppendedBytes += len(frame)

	grouped := done != nil && commit &&
		l.opts.Policy == PolicyCommit && l.opts.GroupCommitDelay > 0
	var cbs []func()
	if grouped {
		l.parked = append(l.parked, done)
		l.stats.GroupBarriers++
		if !l.armed {
			l.armed = true
			l.opts.Scheduler(l.opts.GroupCommitDelay, l.flushGroup)
		}
	} else {
		if l.opts.Policy == PolicyAlways || (l.opts.Policy == PolicyCommit && commit) {
			synced, err := l.syncLocked()
			if err != nil {
				return nil, err
			}
			cbs = synced
		}
		if done != nil {
			cbs = append(cbs, done)
		}
	}
	if l.segSize >= l.opts.SegmentBytes {
		rotated, err := l.rotateLocked()
		if err != nil {
			return cbs, err
		}
		cbs = append(cbs, rotated...)
	}
	return cbs, nil
}

// flushGroup is the scheduled group-commit fsync.
func (l *Log) flushGroup() {
	l.mu.Lock()
	l.armed = false
	if l.groupErr != nil || len(l.parked) == 0 || l.out == nil {
		l.mu.Unlock()
		return
	}
	cbs, err := l.syncLocked()
	l.mu.Unlock()
	if err == nil {
		fire(cbs)
	}
}

// Sync flushes everything appended so far to stable storage, regardless of
// policy. A graceful shutdown calls it (via Close) so restart never replays.
func (l *Log) Sync() error {
	l.mu.Lock()
	cbs, err := l.syncLocked()
	l.mu.Unlock()
	fire(cbs)
	return err
}

// syncLocked fsyncs the open segment if needed and drains the parked
// group-commit barriers it now covers; the caller fires them after
// unlocking. On failure the sticky group error arms: the parked callbacks
// are dropped unfired, forever.
func (l *Log) syncLocked() ([]func(), error) {
	if l.groupErr != nil {
		return nil, l.groupErr
	}
	if !l.dirty {
		return l.drainParked(), nil
	}
	start := time.Time{}
	if l.opts.OnSync != nil {
		start = time.Now()
	}
	if err := l.out.Sync(); err != nil {
		err = fmt.Errorf("wal: sync: %w", err)
		if len(l.parked) > 0 {
			l.groupErr = err
			l.parked = nil
		}
		return nil, err
	}
	if l.opts.OnSync != nil {
		l.opts.OnSync(time.Since(start))
	}
	l.dirty = false
	l.stats.Syncs++
	return l.drainParked(), nil
}

func (l *Log) drainParked() []func() {
	if len(l.parked) == 0 {
		return nil
	}
	cbs := l.parked
	l.parked = nil
	l.stats.GroupBatches++
	return cbs
}

func fire(cbs []func()) {
	for _, cb := range cbs {
		cb()
	}
}

// SaveSnapshot installs state as the log's new snapshot: everything logged
// before this call is superseded and its segments are deleted. The install
// is crash-atomic: the snapshot is written to a temporary name, fsynced,
// and renamed into place before any segment is touched.
func (l *Log) SaveSnapshot(state []byte) error {
	l.mu.Lock()
	cbs, err := l.saveSnapshotLocked(state)
	l.mu.Unlock()
	fire(cbs)
	return err
}

func (l *Log) saveSnapshotLocked(state []byte) ([]func(), error) {
	// Never install a snapshot newer than the synced log — and a snapshot
	// sync covers any parked group-commit barriers along the way.
	cbs, err := l.syncLocked()
	if err != nil {
		return nil, err
	}
	payload := make([]byte, 4+len(state))
	binary.LittleEndian.PutUint32(payload[0:4], crc32.Checksum(state, castagnoli))
	copy(payload[4:], state)
	f, err := l.b.Create("snap.tmp")
	if err != nil {
		return cbs, fmt.Errorf("wal: snapshot: %w", err)
	}
	if _, err := f.Write(payload); err != nil {
		f.Close()
		return cbs, fmt.Errorf("wal: snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return cbs, fmt.Errorf("wal: snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return cbs, fmt.Errorf("wal: snapshot: %w", err)
	}
	oldGen := l.gen
	l.gen++
	if err := l.b.Rename("snap.tmp", snapName(l.gen)); err != nil {
		l.gen = oldGen
		return cbs, fmt.Errorf("wal: installing snapshot: %w", err)
	}
	l.stats.Snapshots++
	// The snapshot is installed; everything below is cleanup that a crash
	// may interrupt and the next Open will finish.
	if l.out != nil {
		l.out.Close()
	}
	l.seg = 0
	if err := l.openSegment(); err != nil {
		return cbs, err
	}
	names, err := l.b.List()
	if err != nil {
		return cbs, fmt.Errorf("wal: snapshot cleanup: %w", err)
	}
	for _, name := range names {
		var g uint64
		var k int
		superseded := (parseSeg(name, &g, &k) && g != l.gen) ||
			(parseSnap(name, &g) && g != l.gen)
		if superseded {
			if err := l.b.Remove(name); err != nil {
				return cbs, fmt.Errorf("wal: snapshot cleanup: %w", err)
			}
		}
	}
	return cbs, nil
}

// Close syncs the tail and closes the open segment. A log closed cleanly
// replays instantly on the next Open — nothing is torn, nothing is lost;
// parked group-commit barriers are covered by the final sync.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.out == nil {
		l.mu.Unlock()
		return nil
	}
	cbs, err := l.syncLocked()
	if err != nil {
		l.mu.Unlock()
		return err
	}
	err = l.out.Close()
	l.out = nil
	l.mu.Unlock()
	fire(cbs)
	return err
}

// Kill drops the handle without syncing — the crash path. Unsynced bytes
// are left to the backend's fate (disk.Mem discards them on Crash; a real
// OS keeps what the page cache already flushed). Parked group-commit
// barriers die unfired: their records were never covered by an fsync.
func (l *Log) Kill() {
	l.mu.Lock()
	l.out = nil
	l.parked = nil
	l.mu.Unlock()
}

// Stats returns a copy of the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Generation returns the current snapshot generation.
func (l *Log) Generation() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.gen
}

func (l *Log) openSegment() error {
	f, err := l.b.Append(segName(l.gen, l.seg))
	if err != nil {
		return fmt.Errorf("wal: opening segment: %w", err)
	}
	l.out = f
	l.segSize = 0
	l.dirty = false
	return nil
}

// rotateLocked closes out the full segment (its sync covers any parked
// barriers; the returned callbacks fire after the caller unlocks).
func (l *Log) rotateLocked() ([]func(), error) {
	cbs, err := l.syncLocked()
	if err != nil {
		return nil, err
	}
	if err := l.out.Close(); err != nil {
		return cbs, fmt.Errorf("wal: rotate: %w", err)
	}
	l.seg++
	l.stats.Rotations++
	return cbs, l.openSegment()
}

func snapName(gen uint64) string       { return fmt.Sprintf("snap-%016x.snap", gen) }
func segName(gen uint64, k int) string { return fmt.Sprintf("wal-%016x-%08x.seg", gen, k) }

func parseSnap(name string, gen *uint64) bool {
	_, err := fmt.Sscanf(name, "snap-%016x.snap", gen)
	return err == nil && name == snapName(*gen)
}

func parseSeg(name string, gen *uint64, k *int) bool {
	_, err := fmt.Sscanf(name, "wal-%016x-%08x.seg", gen, k)
	return err == nil && name == segName(*gen, *k)
}

// newestSnapshot finds the highest-generation snapshot whose checksum
// validates, returning its state, its generation, and the names of every
// superseded or invalid snapshot file for cleanup.
func newestSnapshot(b disk.Backend, names []string) (state []byte, gen uint64, stale []string, err error) {
	type cand struct {
		name string
		gen  uint64
	}
	var cands []cand
	for _, name := range names {
		var g uint64
		if parseSnap(name, &g) {
			cands = append(cands, cand{name, g})
		}
		if name == "snap.tmp" {
			stale = append(stale, name) // crashed before rename: never valid
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].gen > cands[j].gen })
	for i, c := range cands {
		payload, rerr := b.ReadFile(c.name)
		if rerr == nil && len(payload) >= 4 {
			sum := binary.LittleEndian.Uint32(payload[0:4])
			if crc32.Checksum(payload[4:], castagnoli) == sum {
				for _, s := range cands[i+1:] {
					stale = append(stale, s.name)
				}
				return payload[4:], c.gen, stale, nil
			}
		}
		// An installed snapshot that fails its checksum means the atomic
		// rename contract was violated underneath us; refuse to guess.
		return nil, 0, nil, fmt.Errorf("wal: snapshot %s is corrupt", c.name)
	}
	return nil, 0, stale, nil
}

type segRef struct {
	name string
	k    int
}

// segments returns gen's segment files in index order.
func segments(names []string, gen uint64) []segRef {
	var out []segRef
	for _, name := range names {
		var g uint64
		var k int
		if parseSeg(name, &g, &k) && g == gen {
			out = append(out, segRef{name, k})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].k < out[j].k })
	return out
}

func nextSegIndex(segs []segRef) int {
	if len(segs) == 0 {
		return 0
	}
	return segs[len(segs)-1].k + 1
}

// readSegment decodes one segment, reporting the valid prefix length. tail
// marks the last segment of the generation, where a torn frame is tolerated
// (dropped, and truncated away by Open) instead of fatal.
func readSegment(b disk.Backend, name string, tail bool) ([]Record, int, int, error) {
	data, err := b.ReadFile(name)
	if err != nil {
		return nil, 0, 0, err
	}
	var records []Record
	off := 0
	for off < len(data) {
		rec, n, ok := decodeFrame(data[off:])
		if !ok {
			if tail {
				return records, off, len(data) - off, nil
			}
			return nil, 0, 0, fmt.Errorf("%w (offset %d)", ErrCorrupt, off)
		}
		records = append(records, rec)
		off += n
	}
	return records, off, 0, nil
}

// decodeFrame parses one frame from the front of data, reporting its total
// size. ok is false for a partial or checksum-corrupt frame.
func decodeFrame(data []byte) (Record, int, bool) {
	if len(data) < frameHeader {
		return Record{}, 0, false
	}
	size := int(binary.LittleEndian.Uint32(data[0:4]))
	total := frameHeader + size
	if size < 0 || total > len(data) {
		return Record{}, 0, false
	}
	sum := binary.LittleEndian.Uint32(data[4:8])
	if crc32.Checksum(data[8:total], castagnoli) != sum {
		return Record{}, 0, false
	}
	payload := make([]byte, size)
	copy(payload, data[frameHeader:total])
	return Record{Type: data[8], Data: payload}, total, true
}
