package wal

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/disk"
)

func rec(i int) Record {
	return Record{Type: byte(i%7 + 1), Data: []byte(fmt.Sprintf("record-%04d", i))}
}

func appendN(t *testing.T, l *Log, from, n int, commitEvery int) {
	t.Helper()
	for i := from; i < from+n; i++ {
		commit := commitEvery > 0 && i%commitEvery == 0
		if err := l.Append(rec(i), commit); err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
	}
}

func wantRecords(t *testing.T, got []Record, from, n int) {
	t.Helper()
	if len(got) != n {
		t.Fatalf("replayed %d records, want %d", len(got), n)
	}
	for i, r := range got {
		w := rec(from + i)
		if r.Type != w.Type || !bytes.Equal(r.Data, w.Data) {
			t.Fatalf("record %d = {%d %q}, want {%d %q}", i, r.Type, r.Data, w.Type, w.Data)
		}
	}
}

func TestCleanCloseReplaysEverything(t *testing.T) {
	for _, policy := range []Policy{PolicyAlways, PolicyCommit, PolicyNone} {
		t.Run(policy.String(), func(t *testing.T) {
			m := disk.NewMem()
			l, snap, recs, err := Open(m, Options{Policy: policy})
			if err != nil || snap != nil || len(recs) != 0 {
				t.Fatalf("fresh Open = %v, snap %v, %d records", err, snap, len(recs))
			}
			appendN(t, l, 0, 25, 5)
			if err := l.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			_, snap, recs, err = Open(m, Options{Policy: policy})
			if err != nil || snap != nil {
				t.Fatalf("reopen = %v, snap %v", err, snap)
			}
			// A clean close syncs regardless of policy: nothing is lost.
			wantRecords(t, recs, 0, 25)
		})
	}
}

func TestCrashKeepsSyncedPrefix(t *testing.T) {
	m := disk.NewMem()
	l, _, _, err := Open(m, Options{Policy: PolicyCommit})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 10, 0) // no commit barriers: all unsynced
	if err := l.Append(rec(10), true); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 11, 4, 0) // unsynced tail
	l.Kill()
	m.Crash()
	_, _, recs, err := Open(m, Options{})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	// Everything up to and including the commit barrier survives; the
	// unsynced tail is gone.
	wantRecords(t, recs, 0, 11)
}

func TestTornTailToleratedOnlyInLastSegment(t *testing.T) {
	m := disk.NewMem()
	l, _, _, err := Open(m, Options{Policy: PolicyAlways, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 13, 0) // several rotations at 64-byte segments
	if l.Stats().Rotations == 0 {
		t.Fatal("expected rotations")
	}
	l.Kill() // crash mid-append leaves the current (last) segment torn below

	names, _ := m.List()
	var segs []string
	for _, n := range names {
		var g uint64
		var k int
		if parseSeg(n, &g, &k) {
			segs = append(segs, n)
		}
	}
	if len(segs) < 3 {
		t.Fatalf("want >= 3 segments, got %v", segs)
	}

	// Tear the last byte off the last segment: tolerated.
	last := segs[len(segs)-1]
	m.Truncate(last, m.Size(last)-1)
	_, _, recs, err := Open(m, Options{})
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	if len(recs) >= 13 || len(recs) == 0 {
		t.Fatalf("torn tail replayed %d records, want 0 < n < 13", len(recs))
	}

	// The same damage in the middle of the log is corruption.
	m2 := disk.NewMem()
	l2, _, _, _ := Open(m2, Options{Policy: PolicyAlways, SegmentBytes: 64})
	appendN(t, l2, 0, 12, 0)
	l2.Close()
	names2, _ := m2.List()
	var first string
	for _, n := range names2 {
		var g uint64
		var k int
		if parseSeg(n, &g, &k) && k == 0 {
			first = n
		}
	}
	m2.Truncate(first, m2.Size(first)-1)
	if _, _, _, err := Open(m2, Options{}); err == nil {
		t.Fatal("open with mid-log damage succeeded, want ErrCorrupt")
	}
}

func TestTornTailDoesNotPoisonSecondReopen(t *testing.T) {
	// The first Open after a torn write tolerates the damage and resumes in
	// a fresh segment — which makes the torn segment no longer last. Open
	// must truncate the garbage away, or the SECOND Open reads it with
	// tail=false and refuses to start (ErrCorrupt) with all data intact.
	m := disk.NewMem()
	l, _, _, err := Open(m, Options{Policy: PolicyAlways})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 8, 0)
	l.Kill()
	seg := segName(0, 0)
	m.Truncate(seg, m.Size(seg)-3) // tear the last frame

	l1, _, recs, err := Open(m, Options{Policy: PolicyAlways})
	if err != nil {
		t.Fatalf("first reopen with torn tail: %v", err)
	}
	wantRecords(t, recs, 0, 7)
	if l1.Stats().TailDropped == 0 {
		t.Fatal("expected dropped tail bytes")
	}
	appendN(t, l1, 7, 3, 0) // new records land in the fresh segment
	l1.Close()

	_, _, recs, err = Open(m, Options{})
	if err != nil {
		t.Fatalf("second reopen after tolerated torn tail: %v", err)
	}
	wantRecords(t, recs, 0, 10)
}

func TestSnapshotSupersedesLog(t *testing.T) {
	m := disk.NewMem()
	l, _, _, err := Open(m, Options{Policy: PolicyCommit})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 20, 4)
	state := []byte("state-after-20")
	if err := l.SaveSnapshot(state); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	appendN(t, l, 20, 5, 1)
	l.Close()
	_, snap, recs, err := Open(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap, state) {
		t.Fatalf("snapshot = %q, want %q", snap, state)
	}
	wantRecords(t, recs, 20, 5)
	// Superseded segments were deleted: only the new generation remains.
	names, _ := m.List()
	for _, n := range names {
		var g uint64
		var k int
		if parseSeg(n, &g, &k) && g == 0 {
			t.Fatalf("stale generation-0 segment %s survived compaction", n)
		}
	}
}

func TestCrashDuringCompactionCleanup(t *testing.T) {
	// A crash after the snapshot rename but before the old segments are
	// deleted must leave a log that opens to the snapshot, ignores the
	// stale generation, and finishes the cleanup.
	m := disk.NewMem()
	l, _, _, err := Open(m, Options{Policy: PolicyAlways})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 8, 1)
	if err := l.SaveSnapshot([]byte("snap")); err != nil {
		t.Fatal(err)
	}
	// Resurrect a stale generation-0 segment plus an orphan snap.tmp, as if
	// the cleanup never ran.
	f, _ := m.Create(segName(0, 0))
	f.Write([]byte("garbage from gen 0"))
	f.Sync()
	f.Close()
	f2, _ := m.Create("snap.tmp")
	f2.Write([]byte("half-written"))
	f2.Sync()
	f2.Close()
	l.Kill()

	_, snap, recs, err := Open(m, Options{})
	if err != nil {
		t.Fatalf("open after interrupted compaction: %v", err)
	}
	if string(snap) != "snap" || len(recs) != 0 {
		t.Fatalf("got snap %q, %d records", snap, len(recs))
	}
	names, _ := m.List()
	for _, n := range names {
		if n == "snap.tmp" || n == segName(0, 0) {
			t.Fatalf("stale file %s survived reopen", n)
		}
	}
}

func TestCorruptSnapshotFailsOpen(t *testing.T) {
	m := disk.NewMem()
	l, _, _, _ := Open(m, Options{Policy: PolicyAlways})
	appendN(t, l, 0, 3, 1)
	l.SaveSnapshot([]byte("good"))
	l.Close()
	name := snapName(1)
	sz := m.Size(name)
	m.Truncate(name, sz-1)
	if _, _, _, err := Open(m, Options{}); err == nil {
		t.Fatal("open with corrupt installed snapshot succeeded")
	}
}

// TestQuickTruncationReplaysPrefix is the crash-point property at the WAL
// layer: chop a synced log at ANY byte offset and replay must yield a
// prefix of the appended record sequence (never garbage, never a gap).
func TestQuickTruncationReplaysPrefix(t *testing.T) {
	build := func(n int) (*disk.Mem, string) {
		m := disk.NewMem()
		l, _, _, _ := Open(m, Options{Policy: PolicyAlways})
		for i := 0; i < n; i++ {
			l.Append(rec(i), false)
		}
		l.Kill()
		return m, segName(0, 0)
	}
	const n = 40
	prop := func(cut uint16) bool {
		m, seg := build(n)
		size := m.Size(seg)
		at := int(cut) % (size + 1)
		if err := m.Truncate(seg, at); err != nil {
			return false
		}
		_, _, recs, err := Open(m, Options{})
		if err != nil {
			return false
		}
		if len(recs) > n {
			return false
		}
		for i, r := range recs {
			w := rec(i)
			if r.Type != w.Type || !bytes.Equal(r.Data, w.Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestParsePolicy(t *testing.T) {
	for s, want := range map[string]Policy{"": PolicyCommit, "commit": PolicyCommit, "Always": PolicyAlways, "none": PolicyNone} {
		got, err := ParsePolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("ParsePolicy(bogus) succeeded")
	}
}

func TestStatsCount(t *testing.T) {
	m := disk.NewMem()
	l, _, _, _ := Open(m, Options{Policy: PolicyAlways, SegmentBytes: 128})
	appendN(t, l, 0, 10, 0)
	st := l.Stats()
	if st.Appends != 10 || st.Syncs < 10 || st.AppendedBytes == 0 {
		t.Fatalf("stats = %+v", st)
	}
	l.Close()
}

// --- group commit -------------------------------------------------------

// manualSched collects scheduled flushes so tests pump them explicitly.
type manualSched struct{ pending []func() }

func (s *manualSched) schedule(d time.Duration, fn func()) { s.pending = append(s.pending, fn) }

func (s *manualSched) pump() {
	fns := s.pending
	s.pending = nil
	for _, fn := range fns {
		fn()
	}
}

// TestGroupCommitBatchesBarriers: several barriers appended before the
// flush fires share one covering fsync, the completion callbacks fire only
// at that fsync, and the stats record the coalescing.
func TestGroupCommitBatchesBarriers(t *testing.T) {
	m := disk.NewMem()
	sched := &manualSched{}
	l, _, _, err := Open(m, Options{Policy: PolicyCommit, GroupCommitDelay: time.Millisecond, Scheduler: sched.schedule})
	if err != nil {
		t.Fatal(err)
	}
	fired := 0
	for i := 0; i < 5; i++ {
		if err := l.AppendBarrier(rec(i), true, func() { fired++ }); err != nil {
			t.Fatal(err)
		}
	}
	if fired != 0 {
		t.Fatalf("%d callbacks fired before the covering fsync", fired)
	}
	if len(sched.pending) != 1 {
		t.Fatalf("%d flushes scheduled, want 1 (re-arming per barrier defeats coalescing)", len(sched.pending))
	}
	syncsBefore := m.Stats().Syncs
	sched.pump()
	if fired != 5 {
		t.Fatalf("%d callbacks fired after flush, want 5", fired)
	}
	if got := m.Stats().Syncs - syncsBefore; got != 1 {
		t.Fatalf("flush used %d fsyncs, want 1", got)
	}
	st := l.Stats()
	if st.GroupBatches != 1 || st.GroupBarriers != 5 {
		t.Fatalf("stats = %d batches / %d barriers, want 1/5", st.GroupBatches, st.GroupBarriers)
	}
	l.Close()
}

// TestQuickGroupCommitCrashKeepsExactPrefix is the crash-point property for
// group commit: crash at an arbitrary point mid-batch and (a) replay yields
// exactly the records covered by completed flushes — a strict prefix, no
// torn half-batch survives as acknowledged state — and (b) no parked
// completion callback has fired for a record the replay does not produce
// (the durability promise: "done" is never a lie).
func TestQuickGroupCommitCrashKeepsExactPrefix(t *testing.T) {
	prop := func(nAppend, flushAfter uint8) bool {
		n := int(nAppend)%24 + 1
		covered := int(flushAfter) % (n + 1) // barriers before the pumped flush
		m := disk.NewMem()
		sched := &manualSched{}
		l, _, _, err := Open(m, Options{Policy: PolicyCommit, GroupCommitDelay: time.Millisecond, Scheduler: sched.schedule})
		if err != nil {
			return false
		}
		fired := make([]bool, n)
		for i := 0; i < n; i++ {
			i := i
			if err := l.AppendBarrier(rec(i), true, func() { fired[i] = true }); err != nil {
				return false
			}
			if i+1 == covered {
				sched.pump()
			}
		}
		// Power cut mid-batch: every unsynced byte vanishes, parked
		// callbacks never fire.
		m.Crash()
		l.Kill()
		for i := range fired {
			if fired[i] != (i < covered) {
				return false // fired for an uncovered record, or vice versa
			}
		}
		_, _, recs, err := Open(m, Options{})
		if err != nil {
			return false
		}
		if len(recs) != covered {
			return false // not exactly the covered prefix
		}
		for i, r := range recs {
			w := rec(i)
			if r.Type != w.Type || !bytes.Equal(r.Data, w.Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickGroupCommitTornTail combines group commit with a torn tail: the
// crash may also leave a half-written record past the last covering fsync
// (modelled by truncating the unsynced region at an arbitrary byte before
// dropping it is NOT possible — the unsynced region is gone after Crash —
// so instead sync everything, then tear the tail). Replay must still be a
// prefix and reopen must stay functional for further group commits.
func TestQuickGroupCommitTornTail(t *testing.T) {
	prop := func(nAppend, cut uint16) bool {
		n := int(nAppend)%24 + 1
		m := disk.NewMem()
		sched := &manualSched{}
		l, _, _, err := Open(m, Options{Policy: PolicyCommit, GroupCommitDelay: time.Millisecond, Scheduler: sched.schedule})
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if err := l.AppendBarrier(rec(i), true, nil); err != nil {
				return false
			}
		}
		sched.pump()
		l.Kill()
		seg := segName(0, 0)
		size := m.Size(seg)
		if err := m.Truncate(seg, int(cut)%(size+1)); err != nil {
			return false
		}
		l2, _, recs, err := Open(m, Options{Policy: PolicyCommit, GroupCommitDelay: time.Millisecond, Scheduler: sched.schedule})
		if err != nil {
			return false
		}
		defer l2.Close()
		if len(recs) > n {
			return false
		}
		for i, r := range recs {
			w := rec(i)
			if r.Type != w.Type || !bytes.Equal(r.Data, w.Data) {
				return false
			}
		}
		// The reopened log still serves group commits.
		ok := false
		if err := l2.AppendBarrier(rec(n), true, func() { ok = true }); err != nil {
			return false
		}
		sched.pump()
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
