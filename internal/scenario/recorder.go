package scenario

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Lead is the virtual-time offset Finalize gives the earliest recorded
// event, so the replayed cluster is fully wired before the first submit
// or fault lands.
const Lead = 10 * time.Millisecond

// A Recorder appends events to one spool file in a recording directory.
// Each recording participant — every marpd process plus the fault
// injector (marpctl) — owns its own spool, so no cross-process locking is
// needed; spool events carry absolute wall-clock UnixNano timestamps and
// Finalize later merges the spools into one bundle on a shared rebased
// clock. Recorder is safe for concurrent use within one process.
type Recorder struct {
	mu sync.Mutex
	f  *os.File
	w  *bufio.Writer
}

// OpenRecorder opens (creating the directory if needed) the spool file
// `events-<name>.jsonl` in dir for appending. Names must be unique per
// recording participant ("node-1".."node-N", "ctl").
func OpenRecorder(dir, name string) (*Recorder, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, "events-"+name+".jsonl"),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &Recorder{f: f, w: bufio.NewWriter(f)}, nil
}

// Record appends one event, stamping At with the current wall clock if the
// caller left it zero. Each event is flushed through to the OS immediately:
// a recording exists to survive the very crashes it captures.
func (r *Recorder) Record(e Event) error {
	if e.At == 0 {
		e.At = time.Now().UnixNano()
	}
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.f == nil {
		return fmt.Errorf("scenario: recorder closed")
	}
	if _, err := r.w.Write(data); err != nil {
		return err
	}
	if err := r.w.WriteByte('\n'); err != nil {
		return err
	}
	return r.w.Flush()
}

// Close flushes and closes the spool.
func (r *Recorder) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.f == nil {
		return nil
	}
	err := r.w.Flush()
	if cerr := r.f.Close(); err == nil {
		err = cerr
	}
	r.f = nil
	return err
}

// Finalize merges every spool file in dir into one bundle: events from all
// participants are combined, ordered canonically (time, then kind rank,
// then node/home/key so equal-instant merges are deterministic), and
// rebased from absolute wall-clock nanoseconds to offsets starting at
// Lead. The caller supplies the header (cluster shape + replay seed) and
// the digest footer captured from the converged cluster.
func Finalize(dir string, hdr Header, dig Digest) (*Bundle, error) {
	spools, err := filepath.Glob(filepath.Join(dir, "events-*.jsonl"))
	if err != nil {
		return nil, err
	}
	if len(spools) == 0 {
		return nil, fmt.Errorf("scenario: no spool files in %s", dir)
	}
	sort.Strings(spools)
	var events []Event
	for _, path := range spools {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 4096), MaxLine)
		line := 0
		for sc.Scan() {
			line++
			if len(sc.Bytes()) == 0 {
				continue
			}
			var e Event
			if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
				f.Close()
				return nil, malformed("%s line %d: %v", path, line, err)
			}
			events = append(events, e)
		}
		err = sc.Err()
		f.Close()
		if err != nil {
			return nil, malformed("%s: %v", path, err)
		}
	}
	if len(events) == 0 {
		return nil, fmt.Errorf("scenario: spool files in %s hold no events", dir)
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].At != events[j].At {
			return events[i].At < events[j].At
		}
		if r1, r2 := events[i].Kind.rank(), events[j].Kind.rank(); r1 != r2 {
			return r1 < r2
		}
		if events[i].Node != events[j].Node {
			return events[i].Node < events[j].Node
		}
		if events[i].Home != events[j].Home {
			return events[i].Home < events[j].Home
		}
		return events[i].Key < events[j].Key
	})
	base := events[0].At - int64(Lead)
	for i := range events {
		events[i].At -= base
	}
	hdr.V = Version
	dig.Kind = "digest"
	b := &Bundle{Header: hdr, Events: events, Digest: dig}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return b, nil
}
