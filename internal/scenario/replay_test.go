package scenario

import (
	"errors"
	"testing"
)

// replayBundle is a faulty incident small enough for a unit test: five
// servers, a minority partition and a crash mid-stream, Set-only writes.
func replayBundle() *Bundle {
	ms := func(n int64) int64 { return n * 1e6 }
	return &Bundle{
		Header: Header{
			V: Version, Name: "unit", Servers: 5, Seed: 42,
			Shards: 2, Fsync: "commit",
		},
		Events: []Event{
			{At: ms(1), Kind: KindSubmit, Home: 1, Key: "alpha", Value: "1"},
			{At: ms(2), Kind: KindSubmit, Home: 2, Key: "beta", Value: "2"},
			{At: ms(5), Kind: KindPartition, Groups: [][]int{{1, 2, 3}, {4, 5}}},
			{At: ms(8), Kind: KindSubmit, Home: 1, Key: "alpha", Value: "3"},
			{At: ms(10), Kind: KindFsyncStall, StallUS: 200},
			{At: ms(40), Kind: KindHeal},
			{At: ms(45), Kind: KindSubmit, Home: 3, Key: "gamma", Value: "4"},
			{At: ms(60), Kind: KindCrash, Node: 5},
			{At: ms(65), Kind: KindSubmit, Home: 2, Key: "beta", Value: "5"},
			{At: ms(120), Kind: KindRecover, Node: 5},
		},
		Digest: Digest{Kind: "digest", Keys: map[string]string{}},
	}
}

// TestReplayDeterminism is the replayer's core contract: replaying the same
// bundle twice produces byte-identical per-key digests and counts, so a
// footer captured from one replay (or, in production, from the recorded
// live run) is a stable fixture.
func TestReplayDeterminism(t *testing.T) {
	b := replayBundle()
	first, err := Replay(b)
	if err != nil {
		t.Fatalf("first replay: %v", err)
	}
	if first.Commits != 5 || first.Failed != 0 {
		t.Fatalf("replay committed %d / failed %d, want 5/0 (fault plane keeps a majority)",
			first.Commits, first.Failed)
	}
	if len(first.Keys) != 3 {
		t.Fatalf("replay digested %d keys, want 3: %v", len(first.Keys), first.Keys)
	}

	// Install the first replay's outcome as the recorded footer: a second
	// replay must match it exactly.
	b.Digest = Digest{Kind: "digest", Commits: first.Commits, Failed: first.Failed, Keys: first.Keys}
	second, err := Replay(b)
	if err != nil {
		t.Fatalf("second replay: %v", err)
	}
	if !second.OK() {
		t.Fatalf("replay is not deterministic: %v", second.Mismatches)
	}
}

// TestReplayDetectsTampering flips one recorded digest and one count and
// expects per-key mismatch lines, not an error.
func TestReplayDetectsTampering(t *testing.T) {
	b := replayBundle()
	base, err := Replay(b)
	if err != nil {
		t.Fatalf("baseline replay: %v", err)
	}
	keys := make(map[string]string, len(base.Keys))
	for k, v := range base.Keys {
		keys[k] = v
	}
	keys["alpha"] = "deadbeefdeadbeef"
	b.Digest = Digest{Kind: "digest", Commits: base.Commits + 1, Failed: 0, Keys: keys}
	res, err := Replay(b)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if res.OK() {
		t.Fatal("tampered footer matched")
	}
	var sawCommits, sawKey bool
	for _, m := range res.Mismatches {
		t.Log(m)
		if m == "commits: recorded 6, replayed 5" {
			sawCommits = true
		}
		if len(m) > 0 && m[0] == 'r' { // "replica N: key alpha ..."
			sawKey = true
		}
	}
	if !sawCommits || !sawKey {
		t.Fatalf("mismatch lines missing a class: %v", res.Mismatches)
	}
}

// TestReplayRejectsBadHeaders maps bundle-level faults to ErrMalformed.
func TestReplayRejectsBadHeaders(t *testing.T) {
	b := replayBundle()
	b.Header.Geometry = "pentagon"
	if _, err := Replay(b); !errors.Is(err, ErrMalformed) {
		t.Fatalf("bad geometry: err = %v, want ErrMalformed", err)
	}

	b = replayBundle()
	b.Header.Fsync = "sometimes"
	if _, err := Replay(b); !errors.Is(err, ErrMalformed) {
		t.Fatalf("bad fsync: err = %v, want ErrMalformed", err)
	}

	// A fault plane that kills a majority is recorder corruption, not a
	// replayable incident.
	b = replayBundle()
	b.Events = []Event{
		{At: 0, Kind: KindCrash, Node: 1},
		{At: 1, Kind: KindCrash, Node: 2},
		{At: 2, Kind: KindCrash, Node: 3},
	}
	if _, err := Replay(b); !errors.Is(err, ErrMalformed) {
		t.Fatalf("majority-killing fault plane: err = %v, want ErrMalformed", err)
	}
}

// TestReplayFaultless exercises the no-fault fast path (default timeouts,
// no fault model, no durability).
func TestReplayFaultless(t *testing.T) {
	b := &Bundle{
		Header: Header{V: Version, Name: "calm", Servers: 3, Seed: 9},
		Events: []Event{
			{At: 1e6, Kind: KindSubmit, Home: 1, Key: "k", Value: "a"},
			{At: 2e6, Kind: KindSubmit, Home: 2, Key: "k", Value: "b"},
		},
		Digest: Digest{Kind: "digest", Keys: map[string]string{}},
	}
	res, err := Replay(b)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if res.Commits != 2 || len(res.Keys) != 1 {
		t.Fatalf("commits=%d keys=%v, want 2 commits on one key", res.Commits, res.Keys)
	}
	b.Digest = Digest{Kind: "digest", Commits: res.Commits, Keys: res.Keys}
	again, err := Replay(b)
	if err != nil {
		t.Fatalf("second replay: %v", err)
	}
	if !again.OK() {
		t.Fatalf("faultless replay not deterministic: %v", again.Mismatches)
	}
}
