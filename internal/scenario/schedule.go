package scenario

import (
	"time"

	"repro/internal/failure"
	"repro/internal/simnet"
)

// FromSchedule converts a fault schedule into bundle events (canonical
// order). Submit and fsync-stall events have no failure.Schedule
// counterpart; everything a Schedule can express round-trips through
// ToSchedule unchanged.
func FromSchedule(s failure.Schedule) []Event {
	events := make([]Event, 0, len(s))
	for _, e := range s.Sorted() {
		ev := Event{At: int64(e.At)}
		switch e.Kind {
		case failure.Crash:
			ev.Kind = KindCrash
			ev.Node = int(e.Node)
		case failure.Recover:
			ev.Kind = KindRecover
			ev.Node = int(e.Node)
		case failure.Partition:
			ev.Kind = KindPartition
			for _, g := range e.Groups {
				ids := make([]int, len(g))
				for i, id := range g {
					ids[i] = int(id)
				}
				ev.Groups = append(ev.Groups, ids)
			}
		case failure.Heal:
			ev.Kind = KindHeal
		case failure.Lossy:
			ev.Kind = KindLossy
			ev.Loss = e.Loss
		default:
			continue
		}
		events = append(events, ev)
	}
	return events
}

// ToSchedule extracts the fault plane of a bundle's events as a
// failure.Schedule, ready for Validate and Apply. Submit and fsync-stall
// events are skipped (the replayer drives those itself); an unknown kind
// is malformed.
func ToSchedule(events []Event) (failure.Schedule, error) {
	var s failure.Schedule
	for i, ev := range events {
		fe := failure.Event{At: time.Duration(ev.At)}
		switch ev.Kind {
		case KindSubmit, KindFsyncStall:
			continue
		case KindCrash:
			fe.Kind = failure.Crash
			fe.Node = simnet.NodeID(ev.Node)
		case KindRecover:
			fe.Kind = failure.Recover
			fe.Node = simnet.NodeID(ev.Node)
		case KindPartition:
			fe.Kind = failure.Partition
			for _, g := range ev.Groups {
				ids := make([]simnet.NodeID, len(g))
				for j, id := range g {
					ids[j] = simnet.NodeID(id)
				}
				fe.Groups = append(fe.Groups, ids)
			}
		case KindHeal:
			fe.Kind = failure.Heal
		case KindLossy:
			fe.Kind = failure.Lossy
			fe.Loss = ev.Loss
		default:
			return nil, malformed("event %d: kind %q is not a fault", i, string(ev.Kind))
		}
		s = append(s, fe)
	}
	return s, nil
}
