// Package scenario captures live-cluster incidents as replayable bundles.
//
// A bundle is a versioned JSONL file: one header line (cluster shape —
// servers, shards, quorum geometry, fsync policy — plus the replay seed),
// then timestamped events (client submits and injected faults: partitions,
// heals, loss windows, crashes, recoveries, fsync stalls), then one digest
// footer recording the converged cluster's per-key commit digests. The
// format is the durable action/event log the Sutra–Shapiro line of work
// argues for: a replayable schedule of submits and faults, not a packet
// dump — everything engine-dependent (message interleavings, agent IDs,
// commit order) is deliberately excluded.
//
// Bundles are produced by recording a live marpd run (`marpd -record`,
// `marpctl -record`, `marpctl snapshot-scenario`) and consumed by the
// deterministic replayer (`marpbench -exp replay -scenario <file>`), which
// re-executes the schedule on the DES engine and asserts per-replica,
// per-key commit-digest equivalence against the recorded footer
// (DESIGN.md §12, invariant 14). The checked-in corpus under scenarios/ is
// replayed as a CI regression gate.
package scenario

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"time"
)

// Version is the bundle format version this package reads and writes.
const Version = 1

// MaxLine bounds one JSONL line; a longer line is malformed, not a reason
// to allocate without limit.
const MaxLine = 1 << 20

// ErrMalformed tags every bundle-format error: syntactically broken JSONL,
// a missing or duplicated header or footer, an unknown event kind,
// out-of-order timestamps, or kind-specific field violations. Tools map it
// to exit status 2 (operator error), distinct from a digest mismatch
// (exit 1 — the replay ran and disagreed).
var ErrMalformed = errors.New("scenario: malformed bundle")

func malformed(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrMalformed, fmt.Sprintf(format, args...))
}

// Header is the bundle's first line: everything the replayer needs to
// rebuild an equivalent cluster on the DES engine.
type Header struct {
	V       int    `json:"v"`
	Name    string `json:"name"`
	Servers int    `json:"servers"`
	// Seed feeds the replay simulation. Any fixed value keeps the replay
	// deterministic; the commit-digest assertion must hold for every seed
	// (the digest covers the commit set, not an interleaving).
	Seed   int64 `json:"seed"`
	Shards int   `json:"shards,omitempty"`
	// Geometry is the quorum geometry ("majority" when empty).
	Geometry string `json:"geometry,omitempty"`
	// Fsync is the WAL fsync policy of the recorded deployment; empty
	// means the replicas ran volatile and the replay does too.
	Fsync string `json:"fsync,omitempty"`
	// CommitDelayUS is the WAL group-commit window in microseconds.
	CommitDelayUS int64 `json:"commit_delay_us,omitempty"`
	// Created and Note are informational only.
	Created string `json:"created,omitempty"`
	Note    string `json:"note,omitempty"`
}

// EventKind classifies one bundle event.
type EventKind string

// The event kinds. KindSubmit is the data plane; the rest are the fault
// plane (the failure package's vocabulary plus the disk-level stall).
const (
	KindSubmit     EventKind = "submit"
	KindCrash      EventKind = "crash"
	KindRecover    EventKind = "recover"
	KindPartition  EventKind = "partition"
	KindHeal       EventKind = "heal"
	KindLossy      EventKind = "lossy"
	KindFsyncStall EventKind = "fsyncstall"
)

// rank is the canonical same-instant ordering, extending the failure
// package's repairs-before-damage rule: recover, heal, lossy, partition,
// crash, then the disk stall, then client submits.
func (k EventKind) rank() int {
	switch k {
	case KindRecover:
		return 0
	case KindHeal:
		return 1
	case KindLossy:
		return 2
	case KindPartition:
		return 3
	case KindCrash:
		return 4
	case KindFsyncStall:
		return 5
	case KindSubmit:
		return 6
	default:
		return 7
	}
}

// Event is one timestamped occurrence. In a finalized bundle At is the
// offset in nanoseconds from the bundle's epoch; in a recorder spool file
// it is an absolute wall-clock time.Time.UnixNano (Finalize rebases).
type Event struct {
	At   int64     `json:"at"`
	Kind EventKind `json:"kind"`
	// Submit fields.
	Home   int    `json:"home,omitempty"`
	Key    string `json:"key,omitempty"`
	Value  string `json:"value,omitempty"`
	Append bool   `json:"append,omitempty"`
	// Crash/Recover target.
	Node int `json:"node,omitempty"`
	// Partition groups (nodes not named fall in group 0).
	Groups [][]int `json:"groups,omitempty"`
	// Lossy level (0 restores clean links).
	Loss float64 `json:"loss,omitempty"`
	// FsyncStall: modelled per-fsync latency in microseconds (0 clears).
	StallUS int64 `json:"stall_us,omitempty"`
}

// validate checks kind-specific fields against a cluster of n servers.
func (e Event) validate(i, n int) error {
	if e.At < 0 {
		return malformed("event %d at negative time %d", i, e.At)
	}
	switch e.Kind {
	case KindSubmit:
		if e.Home < 1 || e.Home > n {
			return malformed("event %d: submit home %d outside 1..%d", i, e.Home, n)
		}
		if e.Key == "" {
			return malformed("event %d: submit with empty key", i)
		}
	case KindCrash, KindRecover:
		if e.Node < 1 || e.Node > n {
			return malformed("event %d: %s names unknown node %d", i, e.Kind, e.Node)
		}
	case KindPartition:
		seen := make(map[int]bool)
		for _, g := range e.Groups {
			for _, id := range g {
				if id < 1 || id > n {
					return malformed("event %d: partition names unknown node %d", i, id)
				}
				if seen[id] {
					return malformed("event %d: partition names node %d twice", i, id)
				}
				seen[id] = true
			}
		}
	case KindHeal:
		// No fields.
	case KindLossy:
		if e.Loss < 0 || e.Loss > 1 {
			return malformed("event %d: loss level %v outside [0, 1]", i, e.Loss)
		}
	case KindFsyncStall:
		if e.StallUS < 0 {
			return malformed("event %d: negative fsync stall %dus", i, e.StallUS)
		}
	default:
		return malformed("event %d: unknown kind %q", i, string(e.Kind))
	}
	return nil
}

// Digest is the bundle's last line: the converged cluster's per-key commit
// digests (see KeyDigests) plus the commit and failure counts at snapshot
// time. A clean capture has Failed == 0; the replayer reproduces the exact
// per-key digests or reports a mismatch.
type Digest struct {
	Kind    string            `json:"kind"` // always "digest"
	Commits int               `json:"commits"`
	Failed  int               `json:"failed,omitempty"`
	Keys    map[string]string `json:"keys"`
}

// Bundle is one parsed incident bundle.
type Bundle struct {
	Header Header
	Events []Event
	Digest Digest
}

// Span returns the offset of the last event (0 for an empty schedule).
func (b *Bundle) Span() time.Duration {
	if len(b.Events) == 0 {
		return 0
	}
	return time.Duration(b.Events[len(b.Events)-1].At)
}

// HasFaults reports whether any fault-plane event is present (the replayer
// then arms the reliable-delivery and regeneration stack).
func (b *Bundle) HasFaults() bool {
	for _, e := range b.Events {
		if e.Kind != KindSubmit {
			return true
		}
	}
	return false
}

// Validate checks the whole bundle: header sanity, every event against the
// header's cluster size, non-decreasing timestamps, and a well-formed
// digest footer.
func (b *Bundle) Validate() error {
	if b.Header.V != Version {
		return malformed("unsupported version %d (want %d)", b.Header.V, Version)
	}
	if b.Header.Servers < 1 {
		return malformed("header needs servers >= 1, got %d", b.Header.Servers)
	}
	if b.Header.Shards < 0 {
		return malformed("header has negative shards %d", b.Header.Shards)
	}
	prev := int64(0)
	for i, e := range b.Events {
		if err := e.validate(i, b.Header.Servers); err != nil {
			return err
		}
		if e.At < prev {
			return malformed("event %d at %d before predecessor at %d (out of order)", i, e.At, prev)
		}
		prev = e.At
	}
	if b.Digest.Kind != "digest" {
		return malformed("missing digest footer")
	}
	if b.Digest.Commits < 0 || b.Digest.Failed < 0 {
		return malformed("digest counts negative (%d commits, %d failed)", b.Digest.Commits, b.Digest.Failed)
	}
	return nil
}

// Write serializes the bundle as JSONL: header, events, digest footer.
func (b *Bundle) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	write := func(v any) error {
		data, err := json.Marshal(v)
		if err != nil {
			return err
		}
		if _, err := bw.Write(data); err != nil {
			return err
		}
		return bw.WriteByte('\n')
	}
	if err := write(b.Header); err != nil {
		return err
	}
	for _, e := range b.Events {
		if err := write(e); err != nil {
			return err
		}
	}
	d := b.Digest
	d.Kind = "digest"
	if err := write(d); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteFile writes the bundle to path.
func (b *Bundle) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := b.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// kindProbe sniffs a line's discriminator before full decoding.
type kindProbe struct {
	Kind string `json:"kind"`
}

// Read parses and validates a bundle. Every format error — bad JSON, a
// truncated tail, an unknown event kind, out-of-order timestamps, a
// missing footer, trailing lines after it — wraps ErrMalformed; Read never
// panics on hostile input.
func Read(r io.Reader) (*Bundle, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 4096), MaxLine)
	var b Bundle
	line := 0
	haveHeader, haveDigest := false, false
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		if haveDigest {
			return nil, malformed("line %d: content after the digest footer", line)
		}
		if !haveHeader {
			if err := json.Unmarshal(raw, &b.Header); err != nil {
				return nil, malformed("line %d: header: %v", line, err)
			}
			haveHeader = true
			continue
		}
		var probe kindProbe
		if err := json.Unmarshal(raw, &probe); err != nil {
			return nil, malformed("line %d: %v", line, err)
		}
		if probe.Kind == "digest" {
			if err := json.Unmarshal(raw, &b.Digest); err != nil {
				return nil, malformed("line %d: digest: %v", line, err)
			}
			haveDigest = true
			continue
		}
		var e Event
		if err := json.Unmarshal(raw, &e); err != nil {
			return nil, malformed("line %d: event: %v", line, err)
		}
		b.Events = append(b.Events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, malformed("%v", err)
	}
	if !haveHeader {
		return nil, malformed("empty bundle (missing header)")
	}
	if !haveDigest {
		return nil, malformed("truncated bundle (missing digest footer)")
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return &b, nil
}

// ReadFile parses and validates the bundle at path.
func ReadFile(path string) (*Bundle, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	b, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return b, nil
}
