package scenario

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// corpusDir is the checked-in fuzz seed corpus: one serialized bundle (or
// deliberately broken near-bundle) per file, mirroring internal/wire's
// seed-corpus pattern. Regenerate the well-formed seeds with
// UPDATE_SCENARIO_CORPUS=1 go test ./internal/scenario.
const corpusDir = "testdata"

// corpusBundles returns the well-formed seed bundles.
func corpusBundles() []*Bundle {
	full := sampleBundle()
	minimal := &Bundle{
		Header: Header{V: Version, Name: "minimal", Servers: 1, Seed: 1},
		Events: []Event{{At: 0, Kind: KindSubmit, Home: 1, Key: "k", Value: "v"}},
		Digest: Digest{Kind: "digest", Commits: 1, Keys: map[string]string{"k": "0"}},
	}
	empty := &Bundle{
		Header: Header{V: Version, Name: "empty", Servers: 3, Seed: 2},
		Digest: Digest{Kind: "digest", Keys: map[string]string{}},
	}
	return []*Bundle{full, minimal, empty}
}

// brokenSeeds are hostile inputs checked in alongside the well-formed
// corpus so the fuzzer starts from both sides of the validity boundary.
func brokenSeeds(t testing.TB) []string {
	base := lines(t, sampleBundle())
	return []string{
		"",
		"{}",
		base[0],
		strings.Join(base[:len(base)-1], "\n"),
		base[0] + "\n" + `{"at":1,"kind":"wormhole"}` + "\n" + base[len(base)-1],
		`{"v":1,"servers":-3}` + "\n" + base[len(base)-1],
		strings.Repeat(`{"kind":"digest"}`+"\n", 3),
	}
}

func TestSeedCorpusReads(t *testing.T) {
	if os.Getenv("UPDATE_SCENARIO_CORPUS") != "" {
		if err := os.MkdirAll(corpusDir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, b := range corpusBundles() {
			var buf bytes.Buffer
			if err := b.Write(&buf); err != nil {
				t.Fatal(err)
			}
			name := filepath.Join(corpusDir, fmt.Sprintf("bundle-%02d.jsonl", i))
			if err := os.WriteFile(name, buf.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	ents, err := os.ReadDir(corpusDir)
	if err != nil {
		t.Fatalf("no seed corpus (run with UPDATE_SCENARIO_CORPUS=1 to create): %v", err)
	}
	seeds := 0
	for _, ent := range ents {
		if !strings.HasPrefix(ent.Name(), "bundle-") {
			continue
		}
		seeds++
		data, err := os.ReadFile(filepath.Join(corpusDir, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Read(bytes.NewReader(data)); err != nil {
			t.Errorf("%s: checked-in seed no longer parses: %v", ent.Name(), err)
		}
	}
	if want := len(corpusBundles()); seeds != want {
		t.Fatalf("corpus has %d seeds, want %d (regenerate with UPDATE_SCENARIO_CORPUS=1)", seeds, want)
	}
}

// FuzzRead hammers the bundle parser with mutated JSONL. The invariant is
// the parser's whole contract: never panic, and either return a valid
// bundle (which must survive Validate and a write/read round-trip) or an
// error wrapping ErrMalformed.
func FuzzRead(f *testing.F) {
	for _, b := range corpusBundles() {
		var buf bytes.Buffer
		if err := b.Write(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	for _, s := range brokenSeeds(f) {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := Read(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrMalformed) {
				t.Fatalf("parse error %v does not wrap ErrMalformed", err)
			}
			return
		}
		if err := b.Validate(); err != nil {
			t.Fatalf("Read accepted a bundle Validate rejects: %v", err)
		}
		var buf bytes.Buffer
		if err := b.Write(&buf); err != nil {
			t.Fatalf("rewrite: %v", err)
		}
		// Re-marshalling can lengthen lines (JSON escaping), so only
		// assert the round-trip when the rewrite stays under the line cap.
		for _, ln := range bytes.Split(buf.Bytes(), []byte("\n")) {
			if len(ln) > MaxLine {
				return
			}
		}
		if _, err := Read(&buf); err != nil {
			t.Fatalf("accepted bundle does not re-read: %v", err)
		}
	})
}
