package scenario

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestRecorderFinalize(t *testing.T) {
	dir := t.TempDir()
	// Three participants, absolute wall-clock stamps, deliberately
	// interleaved across spools.
	base := time.Now().UnixNano()
	spool := func(name string, events ...Event) {
		r, err := OpenRecorder(dir, name)
		if err != nil {
			t.Fatalf("open %s: %v", name, err)
		}
		for _, e := range events {
			if err := r.Record(e); err != nil {
				t.Fatalf("record: %v", err)
			}
		}
		if err := r.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	}
	spool("node-1",
		Event{At: base + 10, Kind: KindSubmit, Home: 1, Key: "a", Value: "1"},
		Event{At: base + 400, Kind: KindSubmit, Home: 1, Key: "a", Value: "2"},
	)
	spool("node-2",
		Event{At: base + 200, Kind: KindSubmit, Home: 2, Key: "b", Value: "3"},
	)
	spool("ctl",
		Event{At: base + 300, Kind: KindPartition, Groups: [][]int{{1, 2}, {3}}},
		Event{At: base + 500, Kind: KindHeal},
		// Same instant as a submit: the fault (heal) must sort first.
		Event{At: base + 400, Kind: KindHeal},
	)
	hdr := Header{Name: "merge", Servers: 3, Seed: 1}
	dig := Digest{Commits: 3, Keys: map[string]string{"a": "00", "b": "11"}}
	b, err := Finalize(dir, hdr, dig)
	if err != nil {
		t.Fatalf("finalize: %v", err)
	}
	if len(b.Events) != 6 {
		t.Fatalf("got %d events, want 6", len(b.Events))
	}
	if b.Events[0].At != int64(Lead) {
		t.Errorf("first event rebased to %d, want %d", b.Events[0].At, int64(Lead))
	}
	order := make([]EventKind, len(b.Events))
	for i, e := range b.Events {
		order[i] = e.Kind
	}
	want := []EventKind{KindSubmit, KindSubmit, KindPartition, KindHeal, KindSubmit, KindHeal}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("merged order %v, want %v", order, want)
		}
	}
	// The same-instant heal+submit pair: heal (rank 1) before submit (rank 6).
	if b.Events[3].At != b.Events[4].At {
		t.Errorf("same-instant pair split: %d vs %d", b.Events[3].At, b.Events[4].At)
	}
	// A finalized bundle must be writable and re-readable.
	path := filepath.Join(dir, "out.jsonl")
	if err := b.WriteFile(path); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := ReadFile(path); err != nil {
		t.Fatalf("reread: %v", err)
	}
}

func TestFinalizeRejectsGarbageSpool(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "events-bad.jsonl"), []byte("{nope\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Finalize(dir, Header{Name: "x", Servers: 3, Seed: 1}, Digest{})
	if err == nil {
		t.Fatal("garbage spool accepted")
	}
	if !errors.Is(err, ErrMalformed) {
		t.Fatalf("error %v does not wrap ErrMalformed", err)
	}
}

func TestFinalizeEmptyDir(t *testing.T) {
	if _, err := Finalize(t.TempDir(), Header{Servers: 1}, Digest{}); err == nil {
		t.Fatal("empty spool dir accepted")
	}
}

func TestRecorderStampsZeroAt(t *testing.T) {
	dir := t.TempDir()
	r, err := OpenRecorder(dir, "stamp")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Record(Event{Kind: KindHeal}); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Record(Event{Kind: KindHeal}); err == nil {
		t.Fatal("record after close succeeded")
	}
	b, err := Finalize(dir, Header{Name: "s", Servers: 1, Seed: 1}, Digest{Keys: map[string]string{}})
	if err != nil {
		t.Fatalf("finalize: %v", err)
	}
	// One event, stamped with the wall clock and rebased to exactly Lead.
	if len(b.Events) != 1 || b.Events[0].At != int64(Lead) {
		t.Fatalf("events = %+v, want one at %d", b.Events, int64(Lead))
	}
}
