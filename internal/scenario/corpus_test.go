package scenario_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/scenario"
)

// TestScenarioCorpus replays every checked-in incident bundle under
// scenarios/ — the named-scenario gate the CI workflow also runs through
// marpbench. Each bundle was captured from a real live-cluster run
// (cmd/marpd's TestGenerateScenarioCorpus), so a failure here means the
// protocol no longer reproduces a previously-recorded incident's commit
// digests: invariant 14 regressed.
func TestScenarioCorpus(t *testing.T) {
	dir := filepath.Join("..", "..", "scenarios")
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("scenario corpus missing: %v", err)
	}
	bundles := 0
	for _, ent := range ents {
		if !strings.HasSuffix(ent.Name(), ".jsonl") {
			continue
		}
		bundles++
		name := strings.TrimSuffix(ent.Name(), ".jsonl")
		t.Run(name, func(t *testing.T) {
			b, err := scenario.ReadFile(filepath.Join(dir, ent.Name()))
			if err != nil {
				t.Fatalf("read: %v", err)
			}
			res, err := scenario.Replay(b)
			if err != nil {
				t.Fatalf("replay: %v", err)
			}
			if !res.OK() {
				for _, m := range res.Mismatches {
					t.Error(m)
				}
				t.Fatalf("replay diverged from the recorded digests (%d mismatches)", len(res.Mismatches))
			}
			t.Logf("%d events, %d commits, %d keys", len(b.Events), res.Commits, len(res.Keys))
		})
	}
	if bundles < 4 {
		t.Fatalf("corpus holds %d bundles, want >= 4 named scenarios", bundles)
	}
}
