package scenario

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"repro/internal/store"
)

// NormalizeTxn strips the engine-dependent part of a transaction ID. Both
// engines name agents "A<home>.<seq>", but <seq> is assigned in engine
// scheduling order; the stable cross-engine identity is the home server, so
// "A2.17" normalizes to "A2". With that normalization the per-key commit
// SET is engine-independent (PR 4's equivalence invariant), which is what
// the digest must cover.
func NormalizeTxn(txn string) string {
	if i := strings.IndexByte(txn, '.'); i >= 0 {
		return txn[:i]
	}
	return txn
}

// KeyDigests reduces a committed-update log to one hex digest per key:
// FNV-64a over the key's sorted "<normalized-txn>=<data>" entries. Commit
// ORDER and sequence numbers are deliberately excluded — they are engine
// scheduling, not protocol outcome — so a live capture and its DES replay
// digest equal iff they committed the same values from the same homes for
// each key.
func KeyDigests(log []store.Update) map[string]string {
	entries := make(map[string][]string)
	for _, u := range log {
		entries[u.Key] = append(entries[u.Key], NormalizeTxn(u.TxnID)+"="+u.Data)
	}
	out := make(map[string]string, len(entries))
	for k, es := range entries {
		sort.Strings(es)
		h := fnv.New64a()
		for _, e := range es {
			h.Write([]byte(e))
			h.Write([]byte{0})
		}
		out[k] = fmt.Sprintf("%016x", h.Sum64())
	}
	return out
}

// DiffDigests describes, one line per key, how got diverges from want:
// missing keys, unexpected keys, and differing digests. Empty means equal.
func DiffDigests(want, got map[string]string) []string {
	keys := make(map[string]bool, len(want)+len(got))
	for k := range want {
		keys[k] = true
	}
	for k := range got {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	var diffs []string
	for _, k := range sorted {
		w, okW := want[k]
		g, okG := got[k]
		switch {
		case !okW:
			diffs = append(diffs, fmt.Sprintf("key %q: unexpected (got %s, recorded nothing)", k, g))
		case !okG:
			diffs = append(diffs, fmt.Sprintf("key %q: missing (recorded %s, got nothing)", k, w))
		case w != g:
			diffs = append(diffs, fmt.Sprintf("key %q: recorded %s, got %s", k, w, g))
		}
	}
	return diffs
}
