package scenario

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/store"
)

// sampleBundle is a well-formed bundle exercising every event kind.
func sampleBundle() *Bundle {
	return &Bundle{
		Header: Header{
			V: Version, Name: "sample", Servers: 5, Seed: 7,
			Shards: 4, Geometry: "majority", Fsync: "commit",
			CommitDelayUS: 200, Created: "2026-08-07T00:00:00Z", Note: "test",
		},
		Events: []Event{
			{At: 0, Kind: KindSubmit, Home: 1, Key: "a", Value: "v1"},
			{At: 1e6, Kind: KindLossy, Loss: 0.2},
			{At: 2e6, Kind: KindPartition, Groups: [][]int{{1, 2, 3}, {4, 5}}},
			{At: 3e6, Kind: KindSubmit, Home: 2, Key: "b", Value: "v2", Append: true},
			{At: 4e6, Kind: KindFsyncStall, StallUS: 1500},
			{At: 5e6, Kind: KindHeal},
			{At: 5e6, Kind: KindLossy, Loss: 0},
			{At: 6e6, Kind: KindCrash, Node: 5},
			{At: 7e6, Kind: KindRecover, Node: 5},
		},
		Digest: Digest{Kind: "digest", Commits: 2, Keys: map[string]string{
			"a": "0123456789abcdef", "b": "fedcba9876543210",
		}},
	}
}

func TestBundleRoundTrip(t *testing.T) {
	b := sampleBundle()
	var buf bytes.Buffer
	if err := b.Write(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got.Header != b.Header {
		t.Errorf("header round-trip: got %+v, want %+v", got.Header, b.Header)
	}
	if len(got.Events) != len(b.Events) {
		t.Fatalf("got %d events, want %d", len(got.Events), len(b.Events))
	}
	for i := range b.Events {
		w, g := b.Events[i], got.Events[i]
		// Groups is a slice; compare the rest by value and groups by shape.
		if w.At != g.At || w.Kind != g.Kind || w.Home != g.Home || w.Key != g.Key ||
			w.Value != g.Value || w.Append != g.Append || w.Node != g.Node ||
			w.Loss != g.Loss || w.StallUS != g.StallUS || len(w.Groups) != len(g.Groups) {
			t.Errorf("event %d round-trip: got %+v, want %+v", i, g, w)
		}
	}
	if got.Digest.Commits != 2 || got.Digest.Keys["a"] != "0123456789abcdef" {
		t.Errorf("digest round-trip: got %+v", got.Digest)
	}
	if got.Span() != 7*time.Millisecond {
		t.Errorf("span = %v, want 7ms", got.Span())
	}
	if !got.HasFaults() {
		t.Error("HasFaults = false for a bundle full of faults")
	}
}

// lines renders a bundle and applies a mutation to its JSONL lines.
func lines(t testing.TB, b *Bundle) []string {
	t.Helper()
	var buf bytes.Buffer
	if err := b.Write(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	return strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
}

func TestReadRejectsCorruptInput(t *testing.T) {
	base := lines(t, sampleBundle())
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"header only", base[0]},
		{"truncated tail", strings.Join(base[:len(base)-1], "\n")}, // digest footer gone
		{"half a line", strings.Join(base[:len(base)-1], "\n") + "\n" + base[len(base)-1][:20]},
		{"bad json header", "{not json\n" + strings.Join(base[1:], "\n")},
		{"bad json event", base[0] + "\n{not json\n" + strings.Join(base[1:], "\n")},
		{"unknown kind", base[0] + "\n" + `{"at":1,"kind":"meteor-strike"}` + "\n" + strings.Join(base[1:], "\n")},
		{"out of order", base[0] + "\n" + `{"at":99999999999,"kind":"heal"}` + "\n" + strings.Join(base[1:], "\n")},
		{"negative time", base[0] + "\n" + `{"at":-5,"kind":"heal"}` + "\n" + strings.Join(base[1:], "\n")},
		{"content after footer", strings.Join(base, "\n") + "\n" + `{"at":1,"kind":"heal"}`},
		{"double digest", strings.Join(base, "\n") + "\n" + base[len(base)-1]},
		{"wrong version", strings.Replace(strings.Join(base, "\n"), `"v":1`, `"v":99`, 1)},
		{"zero servers", strings.Replace(strings.Join(base, "\n"), `"servers":5`, `"servers":0`, 1)},
		{"submit unknown home", base[0] + "\n" + `{"at":0,"kind":"submit","home":9,"key":"k"}` + "\n" + strings.Join(base[1:], "\n")},
		{"submit empty key", base[0] + "\n" + `{"at":0,"kind":"submit","home":1}` + "\n" + strings.Join(base[1:], "\n")},
		{"crash unknown node", base[0] + "\n" + `{"at":0,"kind":"crash","node":0}` + "\n" + strings.Join(base[1:], "\n")},
		{"partition unknown node", base[0] + "\n" + `{"at":0,"kind":"partition","groups":[[1,99]]}` + "\n" + strings.Join(base[1:], "\n")},
		{"partition duplicate node", base[0] + "\n" + `{"at":0,"kind":"partition","groups":[[1],[1]]}` + "\n" + strings.Join(base[1:], "\n")},
		{"loss out of range", base[0] + "\n" + `{"at":0,"kind":"lossy","loss":1.5}` + "\n" + strings.Join(base[1:], "\n")},
		{"negative stall", base[0] + "\n" + `{"at":0,"kind":"fsyncstall","stall_us":-1}` + "\n" + strings.Join(base[1:], "\n")},
		{"oversized line", base[0] + "\n" + `{"at":0,"kind":"submit","home":1,"key":"` + strings.Repeat("x", MaxLine) + `"}` + "\n" + strings.Join(base[1:], "\n")},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Read(strings.NewReader(tc.in))
			if err == nil {
				t.Fatal("corrupt bundle accepted")
			}
			if !errors.Is(err, ErrMalformed) {
				t.Fatalf("error %v does not wrap ErrMalformed", err)
			}
		})
	}
}

func TestNormalizeTxn(t *testing.T) {
	for in, want := range map[string]string{"A2.17": "A2", "A13.0": "A13", "A4": "A4", "": ""} {
		if got := NormalizeTxn(in); got != want {
			t.Errorf("NormalizeTxn(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestKeyDigestsEngineInvariance(t *testing.T) {
	// The same commit set with engine-dependent spin — different agent
	// sequence numbers, different commit order, different Seq/Stamp —
	// must digest identically.
	live := []store.Update{
		{TxnID: "A1.5", Key: "a", Data: "x", Seq: 1, Stamp: 100},
		{TxnID: "A2.9", Key: "a", Data: "y", Seq: 2, Stamp: 200},
		{TxnID: "A3.2", Key: "b", Data: "z", Seq: 3, Stamp: 300},
	}
	des := []store.Update{
		{TxnID: "A3.0", Key: "b", Data: "z", Seq: 1, Stamp: 7},
		{TxnID: "A2.1", Key: "a", Data: "y", Seq: 2, Stamp: 8},
		{TxnID: "A1.2", Key: "a", Data: "x", Seq: 3, Stamp: 9},
	}
	dl, dd := KeyDigests(live), KeyDigests(des)
	if diff := DiffDigests(dl, dd); len(diff) != 0 {
		t.Fatalf("equivalent logs digest differently: %v", diff)
	}
	if len(dl) != 2 {
		t.Fatalf("got %d keys, want 2", len(dl))
	}
	// A genuinely different commit set must not collide.
	other := KeyDigests(append([]store.Update{}, live[1:]...))
	if diff := DiffDigests(dl, other); len(diff) == 0 {
		t.Fatal("dropping a commit left the digests equal")
	}
}

func TestDiffDigests(t *testing.T) {
	want := map[string]string{"a": "1", "b": "2"}
	got := map[string]string{"b": "3", "c": "4"}
	diffs := DiffDigests(want, got)
	if len(diffs) != 3 {
		t.Fatalf("got %d diffs, want 3: %v", len(diffs), diffs)
	}
	for _, d := range diffs {
		t.Log(d)
	}
	if diffs := DiffDigests(want, map[string]string{"a": "1", "b": "2"}); len(diffs) != 0 {
		t.Fatalf("equal maps diffed: %v", diffs)
	}
}
