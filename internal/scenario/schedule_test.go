package scenario

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/failure"
	"repro/internal/simnet"
)

// TestScheduleRoundTrip drives every failure event kind through the bundle
// format and back: serialize a Schedule to bundle events, re-extract it,
// and require the identical canonical (Sorted) ordering — so a fault
// recorded from one run re-injects with the same same-instant semantics
// (repairs before damage) in the replay.
func TestScheduleRoundTrip(t *testing.T) {
	// Deliberately constructed out of order, with same-instant collisions
	// across every kind.
	sched := failure.Schedule{
		{At: 40 * time.Millisecond, Kind: failure.Crash, Node: 5},
		{At: 40 * time.Millisecond, Kind: failure.Recover, Node: 4},
		{At: 40 * time.Millisecond, Kind: failure.Partition,
			Groups: [][]simnet.NodeID{{1, 2, 3}, {4, 5}}},
		{At: 40 * time.Millisecond, Kind: failure.Heal},
		{At: 40 * time.Millisecond, Kind: failure.Lossy, Loss: 0.25},
		{At: 10 * time.Millisecond, Kind: failure.Crash, Node: 4},
		{At: 70 * time.Millisecond, Kind: failure.Recover, Node: 5},
		{At: 70 * time.Millisecond, Kind: failure.Lossy, Loss: 0},
		{At: 70 * time.Millisecond, Kind: failure.Heal},
	}
	events := FromSchedule(sched)
	if len(events) != len(sched) {
		t.Fatalf("serialized %d events, want %d", len(events), len(sched))
	}
	back, err := ToSchedule(events)
	if err != nil {
		t.Fatalf("to schedule: %v", err)
	}
	want, got := sched.Sorted(), back.Sorted()
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("canonical ordering changed across the round-trip:\nwant %+v\ngot  %+v", want, got)
	}
	// The round-tripped schedule must still validate like the original.
	if err := want.Validate(5, 2); err != nil {
		t.Fatalf("original schedule invalid: %v", err)
	}
	if err := got.Validate(5, 2); err != nil {
		t.Fatalf("round-tripped schedule invalid: %v", err)
	}
}

// TestScheduleRoundTripViaBundle goes the long way: the schedule is
// embedded in a written bundle, read back from bytes, and re-extracted.
func TestScheduleRoundTripViaBundle(t *testing.T) {
	sched := failure.Schedule{
		{At: 5 * time.Millisecond, Kind: failure.Partition,
			Groups: [][]simnet.NodeID{{1, 2}, {3}}},
		{At: 15 * time.Millisecond, Kind: failure.Heal},
		{At: 20 * time.Millisecond, Kind: failure.Crash, Node: 3},
		{At: 30 * time.Millisecond, Kind: failure.Recover, Node: 3},
		{At: 35 * time.Millisecond, Kind: failure.Lossy, Loss: 0.1},
	}
	b := &Bundle{
		Header: Header{V: Version, Name: "faults", Servers: 3, Seed: 1},
		Events: FromSchedule(sched),
		Digest: Digest{Kind: "digest", Keys: map[string]string{}},
	}
	base := lines(t, b)
	reread, err := Read(strings.NewReader(strings.Join(base, "\n") + "\n"))
	if err != nil {
		t.Fatalf("reread: %v", err)
	}
	back, err := ToSchedule(reread.Events)
	if err != nil {
		t.Fatalf("to schedule: %v", err)
	}
	if !reflect.DeepEqual(sched.Sorted(), back.Sorted()) {
		t.Fatalf("schedule changed across bundle serialization:\nwant %+v\ngot  %+v",
			sched.Sorted(), back.Sorted())
	}
}

// TestToScheduleSkipsNonFaults checks the replayer-owned kinds are
// filtered, not errors.
func TestToScheduleSkipsNonFaults(t *testing.T) {
	events := []Event{
		{At: 0, Kind: KindSubmit, Home: 1, Key: "k", Value: "v"},
		{At: 1, Kind: KindFsyncStall, StallUS: 100},
		{At: 2, Kind: KindCrash, Node: 1},
	}
	s, err := ToSchedule(events)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 1 || s[0].Kind != failure.Crash {
		t.Fatalf("got %+v, want one crash", s)
	}
	if _, err := ToSchedule([]Event{{Kind: "gremlin"}}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}
