package scenario

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/desengine"
	"repro/internal/disk"
	"repro/internal/quorum"
	"repro/internal/runtime"
	"repro/internal/simnet"
	"repro/internal/store"
	"repro/internal/wal"
)

// ReplayResult is the outcome of one deterministic replay.
type ReplayResult struct {
	// Commits and Failed count replayed client requests by outcome.
	Commits int
	Failed  int
	// Keys holds the replayed cluster's per-key commit digests.
	Keys map[string]string
	// Mismatches lists every divergence from the recorded footer — count
	// disagreements and per-key digest diffs, one line each, prefixed with
	// the replica that diverged. Empty means the replay reproduced the
	// recorded outcome exactly.
	Mismatches []string
}

// OK reports whether the replay matched the recording.
func (r *ReplayResult) OK() bool { return len(r.Mismatches) == 0 }

// Replay re-executes a bundle on the DES engine and checks invariant 14:
// the recorded live run and its deterministic replay produce equal per-key
// commit digests on every replica.
//
// Time mapping is 1:1 — a submit recorded t wall-clock nanoseconds into
// the incident is injected t virtual nanoseconds into the simulation, so
// the replay preserves the recorded interleaving of submits and faults at
// the timescale the DES latency model already speaks (LAN microseconds to
// WAN milliseconds under nanosecond virtual time). Message interleavings
// below that timescale are the engine's own; the digest deliberately
// covers only what is engine-independent.
//
// The replay arms the full recovery stack (agent regeneration, and —
// whenever the bundle carries fault events — reliable delivery with the
// chaos experiment's aggressive timeouts): the bundle's fault plane was
// validated to never take down a majority, so every recorded submit must
// commit and any digest gap is a protocol divergence, not injected bad
// luck. A header fsync policy re-creates durability on deterministic
// in-memory disks; fsyncstall events retarget their modelled sync latency
// mid-run. The recorded group-commit window is provenance only: the DES
// engine always runs the synchronous fsync-per-barrier path, and the
// commit-set digest is independent of that choice.
//
// Returned errors wrap ErrMalformed when the bundle itself is at fault
// (bad geometry or fsync names, a fault plane that kills a majority);
// other errors mean the replay could not complete. A completed replay
// reports divergence through ReplayResult.Mismatches, not an error.
func Replay(b *Bundle) (*ReplayResult, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	n := b.Header.Servers
	geom, err := quorum.ParseGeometry(b.Header.Geometry)
	if err != nil {
		return nil, malformed("header: %v", err)
	}
	sched, err := ToSchedule(b.Events)
	if err != nil {
		return nil, err
	}
	if err := sched.Validate(n, (n-1)/2); err != nil {
		return nil, malformed("fault plane: %v", err)
	}

	cc := core.Config{
		N:                n,
		Shards:           b.Header.Shards,
		Geometry:         geom,
		RegenerateAgents: true,
	}
	if b.HasFaults() {
		cc.Reliable = true
		cc.RetransmitBase = 10 * time.Millisecond
		cc.RetransmitAttempts = 12
		cc.MigrationTimeout = 60 * time.Millisecond
		cc.ClaimTimeout = 250 * time.Millisecond
		cc.RetryInterval = 120 * time.Millisecond
	}

	// stall is the current modelled fsync latency; fsyncstall events move
	// it. The DES engine is single-threaded, so a plain variable shared by
	// every backend's SyncDelay closure is race-free.
	var stall time.Duration
	if b.Header.Fsync != "" {
		policy, err := wal.ParsePolicy(b.Header.Fsync)
		if err != nil {
			return nil, malformed("header: %v", err)
		}
		cc.Durability = &core.DurabilityConfig{
			Policy: policy,
			Backend: func(runtime.NodeID) disk.Backend {
				m := disk.NewMem()
				m.SyncDelay = func() time.Duration { return stall }
				return m
			},
		}
	}

	dcfg := desengine.Config{Seed: b.Header.Seed, Cluster: cc}
	for _, e := range b.Events {
		if e.Kind == KindLossy {
			// Loss windows need the fault model armed from the start; its
			// level is 0 until the first lossy event fires.
			dcfg.Faults = simnet.NewFaultModel(b.Header.Seed+5000, 0, 0)
			break
		}
	}
	cl, err := desengine.New(dcfg)
	if err != nil {
		return nil, err
	}

	for _, e := range b.Events {
		e := e
		switch e.Kind {
		case KindSubmit:
			cl.Sim().After(time.Duration(e.At), func() {
				req := core.Set(e.Key, e.Value)
				if e.Append {
					req = core.Append(e.Key, e.Value)
				}
				_ = cl.Submit(runtime.NodeID(e.Home), req)
			})
		case KindFsyncStall:
			cl.Sim().After(time.Duration(e.At), func() {
				stall = time.Duration(e.StallUS) * time.Microsecond
			})
		}
	}
	sched.Apply(func(d time.Duration, fn func()) { cl.Sim().After(d, fn) }, cl)

	cl.Sim().RunFor(b.Span() + time.Millisecond)
	if err := cl.RunUntilDone(30 * time.Minute); err != nil {
		return nil, err
	}
	cl.Settle(10 * time.Second)
	if err := cl.Referee().Err(); err != nil {
		return nil, fmt.Errorf("scenario: replay broke the single-claimant oracle: %w", err)
	}
	if err := cl.CheckConvergence(); err != nil {
		return nil, fmt.Errorf("scenario: replay replicas diverged: %w", err)
	}

	res := &ReplayResult{}
	for _, o := range cl.Outcomes() {
		if o.Failed {
			res.Failed += o.Requests
		} else {
			res.Commits += o.Requests
		}
	}
	if res.Commits != b.Digest.Commits {
		res.Mismatches = append(res.Mismatches,
			fmt.Sprintf("commits: recorded %d, replayed %d", b.Digest.Commits, res.Commits))
	}
	if res.Failed != b.Digest.Failed {
		res.Mismatches = append(res.Mismatches,
			fmt.Sprintf("failed: recorded %d, replayed %d", b.Digest.Failed, res.Failed))
	}
	for _, id := range cl.Nodes() {
		s := cl.Server(id)
		var log []store.Update
		for sh := 0; sh < s.Shards(); sh++ {
			log = append(log, s.StoreOf(sh).Log()...)
		}
		got := KeyDigests(log)
		if res.Keys == nil {
			res.Keys = got
		}
		for _, d := range DiffDigests(b.Digest.Keys, got) {
			res.Mismatches = append(res.Mismatches, fmt.Sprintf("replica %d: %s", id, d))
		}
	}
	return res, nil
}
