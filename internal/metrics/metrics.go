// Package metrics aggregates per-request measurements into the statistics
// the paper reports: ALT (average time to obtain the lock), ATT (average
// total time to process an update), and PRK (the fraction of requests whose
// lock was obtained after visiting K servers) — plus percentiles and
// traffic counters the paper's prose discusses qualitatively.
package metrics

import (
	"fmt"
	"sort"
	"time"
)

// Sample is one completed update request, protocol-agnostic: MARP outcomes
// and baseline results both convert into it.
type Sample struct {
	ALT     time.Duration // time to obtain the lock / serialization point
	ATT     time.Duration // total processing time
	Visits  int           // servers visited to obtain the lock (0 for baselines)
	ByTie   bool
	Retries int
	Failed  bool
	Shards  []int // key-space shards the request batch touched (empty = unsharded)
}

// Summary aggregates samples.
type Summary struct {
	Count    int
	Failures int

	MeanALT time.Duration
	P50ALT  time.Duration
	P95ALT  time.Duration
	MaxALT  time.Duration

	MeanATT time.Duration
	P50ATT  time.Duration
	P95ATT  time.Duration
	MaxATT  time.Duration

	// VisitDist[k] is the number of successful requests whose lock was
	// obtained after visiting exactly k servers.
	VisitDist map[int]int
	TieCount  int
	Retries   int

	// ByShard labels the aggregation by key-space shard: each successful
	// sample counts toward every shard its batch touched. Nil when no
	// sample carried shard labels (unsharded runs and baselines).
	ByShard map[int]ShardSummary
}

// ShardSummary is one shard's slice of the aggregation: the same ALT/ATT
// means and visit distribution (PRK) as the whole-run Summary, restricted
// to the requests that touched the shard.
type ShardSummary struct {
	Count     int
	MeanALT   time.Duration
	MeanATT   time.Duration
	VisitDist map[int]int
}

// PRK returns the percentage of the shard's requests whose lock was
// obtained by visiting exactly k servers.
func (s ShardSummary) PRK(k int) float64 {
	if s.Count == 0 {
		return 0
	}
	return 100 * float64(s.VisitDist[k]) / float64(s.Count)
}

// Summarize computes a Summary over the samples. Failed samples count in
// Count/Failures but contribute no latency or visit statistics.
func Summarize(samples []Sample) Summary {
	s := Summary{VisitDist: make(map[int]int)}
	var alts, atts []time.Duration
	shardALT := make(map[int]time.Duration)
	shardATT := make(map[int]time.Duration)
	for _, x := range samples {
		s.Count++
		if x.Failed {
			s.Failures++
			continue
		}
		alts = append(alts, x.ALT)
		atts = append(atts, x.ATT)
		s.VisitDist[x.Visits]++
		if x.ByTie {
			s.TieCount++
		}
		s.Retries += x.Retries
		for _, sh := range x.Shards {
			if s.ByShard == nil {
				s.ByShard = make(map[int]ShardSummary)
			}
			ss := s.ByShard[sh]
			if ss.VisitDist == nil {
				ss.VisitDist = make(map[int]int)
			}
			ss.Count++
			ss.VisitDist[x.Visits]++
			shardALT[sh] += x.ALT
			shardATT[sh] += x.ATT
			s.ByShard[sh] = ss
		}
	}
	for sh, ss := range s.ByShard {
		ss.MeanALT = shardALT[sh] / time.Duration(ss.Count)
		ss.MeanATT = shardATT[sh] / time.Duration(ss.Count)
		s.ByShard[sh] = ss
	}
	s.MeanALT = mean(alts)
	s.MeanATT = mean(atts)
	s.P50ALT = Percentile(alts, 50)
	s.P95ALT = Percentile(alts, 95)
	s.MaxALT = maxOf(alts)
	s.P50ATT = Percentile(atts, 50)
	s.P95ATT = Percentile(atts, 95)
	s.MaxATT = maxOf(atts)
	return s
}

// PRK returns the percentage of successful requests whose lock was obtained
// by visiting exactly k servers — the paper's Figure 4 metric.
func (s Summary) PRK(k int) float64 {
	ok := s.Count - s.Failures
	if ok == 0 {
		return 0
	}
	return 100 * float64(s.VisitDist[k]) / float64(ok)
}

// MeanVisits returns the average number of servers visited per successful
// request.
func (s Summary) MeanVisits() float64 {
	total, n := 0, 0
	for k, c := range s.VisitDist {
		total += k * c
		n += c
	}
	if n == 0 {
		return 0
	}
	return float64(total) / float64(n)
}

func mean(xs []time.Duration) time.Duration {
	if len(xs) == 0 {
		return 0
	}
	var sum time.Duration
	for _, x := range xs {
		sum += x
	}
	return sum / time.Duration(len(xs))
}

func maxOf(xs []time.Duration) time.Duration {
	var m time.Duration
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (nearest-rank) of xs.
func Percentile(xs []time.Duration, p float64) time.Duration {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(xs))
	copy(sorted, xs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// Ms formats a duration as milliseconds with two decimals, the unit of the
// paper's figures.
func Ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d)/float64(time.Millisecond))
}
