package metrics

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestSummarizeBasics(t *testing.T) {
	samples := []Sample{
		{ALT: ms(10), ATT: ms(20), Visits: 3},
		{ALT: ms(20), ATT: ms(40), Visits: 3, ByTie: true},
		{ALT: ms(30), ATT: ms(60), Visits: 5, Retries: 2},
	}
	s := Summarize(samples)
	if s.Count != 3 || s.Failures != 0 {
		t.Fatalf("count=%d fail=%d", s.Count, s.Failures)
	}
	if s.MeanALT != ms(20) || s.MeanATT != ms(40) {
		t.Fatalf("means: %v %v", s.MeanALT, s.MeanATT)
	}
	if s.MaxALT != ms(30) || s.MaxATT != ms(60) {
		t.Fatalf("max: %v %v", s.MaxALT, s.MaxATT)
	}
	if s.VisitDist[3] != 2 || s.VisitDist[5] != 1 {
		t.Fatalf("visits: %v", s.VisitDist)
	}
	if s.TieCount != 1 || s.Retries != 2 {
		t.Fatalf("ties=%d retries=%d", s.TieCount, s.Retries)
	}
}

func TestSummarizeSkipsFailed(t *testing.T) {
	samples := []Sample{
		{ALT: ms(10), ATT: ms(20), Visits: 3},
		{Failed: true},
	}
	s := Summarize(samples)
	if s.Count != 2 || s.Failures != 1 {
		t.Fatalf("count=%d fail=%d", s.Count, s.Failures)
	}
	if s.MeanALT != ms(10) {
		t.Fatalf("failed sample polluted mean: %v", s.MeanALT)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 || s.MeanALT != 0 || s.PRK(3) != 0 || s.MeanVisits() != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
}

func TestPRK(t *testing.T) {
	samples := []Sample{
		{Visits: 3}, {Visits: 3}, {Visits: 4}, {Visits: 5},
	}
	s := Summarize(samples)
	if got := s.PRK(3); got != 50 {
		t.Fatalf("PRK(3) = %v", got)
	}
	if got := s.PRK(4); got != 25 {
		t.Fatalf("PRK(4) = %v", got)
	}
	if got := s.PRK(9); got != 0 {
		t.Fatalf("PRK(9) = %v", got)
	}
	if mv := s.MeanVisits(); mv != 3.75 {
		t.Fatalf("MeanVisits = %v", mv)
	}
}

func TestPercentile(t *testing.T) {
	xs := []time.Duration{ms(1), ms(2), ms(3), ms(4), ms(5), ms(6), ms(7), ms(8), ms(9), ms(10)}
	if p := Percentile(xs, 50); p != ms(5) {
		t.Fatalf("P50 = %v", p)
	}
	if p := Percentile(xs, 95); p != ms(9) && p != ms(10) {
		t.Fatalf("P95 = %v", p)
	}
	if p := Percentile(xs, 0); p != ms(1) {
		t.Fatalf("P0 = %v", p)
	}
	if p := Percentile(xs, 100); p != ms(10) {
		t.Fatalf("P100 = %v", p)
	}
	if p := Percentile(nil, 50); p != 0 {
		t.Fatalf("P50(nil) = %v", p)
	}
	// Percentile must not mutate its input.
	unsorted := []time.Duration{ms(3), ms(1), ms(2)}
	Percentile(unsorted, 50)
	if unsorted[0] != ms(3) {
		t.Fatal("Percentile sorted its input in place")
	}
}

func TestMsFormat(t *testing.T) {
	if got := Ms(1500 * time.Microsecond); got != "1.50" {
		t.Fatalf("Ms = %q", got)
	}
	if got := Ms(0); got != "0.00" {
		t.Fatalf("Ms(0) = %q", got)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		Title:   "Figure 2: ALT",
		Note:    "milliseconds",
		Columns: []string{"mean-arrival", "3 servers", "5 servers"},
	}
	tbl.AddRow("10ms", "1.23", "4.56")
	tbl.AddRow("100ms", "0.98", "2.10")
	out := tbl.String()
	for _, want := range []string{"Figure 2: ALT", "milliseconds", "mean-arrival", "3 servers", "4.56", "100ms"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title, note, header, separator, two rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
}

// Property: mean lies between min and max for any sample set.
func TestPropertyMeanBounded(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var samples []Sample
		min, max := time.Duration(1<<62), time.Duration(0)
		for _, r := range raw {
			d := time.Duration(r) * time.Microsecond
			samples = append(samples, Sample{ALT: d, ATT: d})
			if d < min {
				min = d
			}
			if d > max {
				max = d
			}
		}
		s := Summarize(samples)
		return s.MeanALT >= min && s.MeanALT <= max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarizeByShard(t *testing.T) {
	samples := []Sample{
		{ALT: 10 * time.Millisecond, ATT: 20 * time.Millisecond, Visits: 1, Shards: []int{0}},
		{ALT: 30 * time.Millisecond, ATT: 40 * time.Millisecond, Visits: 2, Shards: []int{0, 3}},
		{ALT: 50 * time.Millisecond, ATT: 60 * time.Millisecond, Visits: 2, Shards: []int{3}},
		{Failed: true, Shards: []int{3}},
	}
	s := Summarize(samples)
	if len(s.ByShard) != 2 {
		t.Fatalf("ByShard = %+v", s.ByShard)
	}
	s0, s3 := s.ByShard[0], s.ByShard[3]
	if s0.Count != 2 || s0.MeanALT != 20*time.Millisecond || s0.MeanATT != 30*time.Millisecond {
		t.Fatalf("shard 0 = %+v", s0)
	}
	if s3.Count != 2 || s3.MeanALT != 40*time.Millisecond || s3.MeanATT != 50*time.Millisecond {
		t.Fatalf("shard 3 = %+v", s3)
	}
	if got := s3.PRK(2); got != 100 {
		t.Fatalf("shard 3 PRK(2) = %v", got)
	}
	if got := s0.PRK(1); got != 50 {
		t.Fatalf("shard 0 PRK(1) = %v", got)
	}
	// Unsharded samples leave ByShard nil.
	if s := Summarize([]Sample{{ALT: time.Millisecond}}); s.ByShard != nil {
		t.Fatalf("unsharded ByShard = %+v", s.ByShard)
	}
}
