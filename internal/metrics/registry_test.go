package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestRegistryTypedInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test.counter", "a counter")
	g := r.Gauge("test.gauge", "a gauge")
	h := r.Histogram("test.hist", "a histogram", []float64{1, 10})
	c.Inc()
	c.Add(4)
	g.Set(2.5)
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)
	snap := r.Gather()
	if v := snap.Value("test.counter"); v != 5 {
		t.Fatalf("counter = %v, want 5", v)
	}
	if v := snap.Value("test.gauge"); v != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", v)
	}
	var hp *Point
	for i := range snap {
		if snap[i].Name == "test.hist" {
			hp = &snap[i]
		}
	}
	if hp == nil {
		t.Fatal("histogram point missing")
	}
	if hp.Count != 3 || hp.Value != 55.5 {
		t.Fatalf("hist count/sum = %d/%v, want 3/55.5", hp.Count, hp.Value)
	}
	if hp.Buckets[0].N != 1 || hp.Buckets[1].N != 2 {
		t.Fatalf("cumulative buckets = %+v, want 1,2", hp.Buckets)
	}
}

func TestRegistryReadThroughCollectors(t *testing.T) {
	r := NewRegistry()
	n := 7.0
	r.CounterFunc("sub.reads", "reads so far", func() float64 { return n })
	r.GaugeVecFunc("sub.depth", "per-shard depth", "shard", func() map[string]float64 {
		return map[string]float64{"0": 1, "2": 3, "10": 5}
	})
	snap := r.Gather()
	if v := snap.Value("sub.reads"); v != 7 {
		t.Fatalf("collector value = %v, want 7", v)
	}
	n = 9
	if v := r.Gather().Value("sub.reads"); v != 9 {
		t.Fatalf("collector resample = %v, want 9", v)
	}
	if v := snap.Labeled("sub.depth", "2"); v != 3 {
		t.Fatalf("labeled value = %v, want 3", v)
	}
	// Labels sort numerically: 0, 2, 10 — not 0, 10, 2.
	var order []string
	for _, p := range snap {
		if p.Name == "sub.depth" {
			order = append(order, p.LabelValue)
		}
	}
	if strings.Join(order, ",") != "0,2,10" {
		t.Fatalf("label order = %v, want 0,2,10", order)
	}
}

func TestRegistryNameValidation(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "nodots", "Upper.case", "trailing.", "sp ace.x"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q: want panic", bad)
				}
			}()
			r.Counter(bad, "")
		}()
	}
	r.Counter("ok.name", "")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate registration: want panic")
			}
		}()
		r.Counter("ok.name", "")
	}()
}

func TestRegistrySingleValueRead(t *testing.T) {
	r := NewRegistry()
	calls := 0
	r.CounterFunc("a.one", "", func() float64 { calls++; return 1 })
	r.CounterFunc("a.two", "", func() float64 { t.Fatal("a.two collected"); return 0 })
	if v := r.Value("a.one"); v != 1 || calls != 1 {
		t.Fatalf("Value = %v (calls %d), want 1 (1)", v, calls)
	}
	if v := r.Value("a.absent"); v != 0 {
		t.Fatalf("absent Value = %v, want 0", v)
	}
}

func TestPrometheusRendering(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("marp.wal.syncs", "WAL fsyncs")
	c.Add(3)
	r.GaugeVecFunc("marp.shard.ll_depth", "locking-list depth", "shard", func() map[string]float64 {
		return map[string]float64{"0": 2}
	})
	h := r.Histogram("marp.wal.fsync_seconds", "fsync latency", []float64{0.001})
	h.Observe(0.0005)
	var sb strings.Builder
	if err := r.Gather().WritePrometheus(&sb, r); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP marp_wal_syncs WAL fsyncs",
		"# TYPE marp_wal_syncs counter",
		"marp_wal_syncs 3",
		`marp_shard_ll_depth{shard="0"} 2`,
		`marp_wal_fsync_seconds_bucket{le="0.001"} 1`,
		`marp_wal_fsync_seconds_bucket{le="+Inf"} 1`,
		"marp_wal_fsync_seconds_sum 0.0005",
		"marp_wal_fsync_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

// TestRegistryConcurrentScrape hammers typed instruments from many
// goroutines while gathering concurrently, and asserts every counter is
// monotonic across snapshots — the registry-level half of the ops-plane
// concurrency guarantee (the endpoint-level half scrapes a live cluster;
// see transport's TestMetricsScrapeUnderLoad).
func TestRegistryConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("load.ops", "")
	h := r.Histogram("load.lat", "", []float64{1, 2, 4})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					c.Inc()
					h.Observe(3)
				}
			}
		}()
	}
	var lastOps, lastCount, lastBucket uint64
	for i := 0; i < 200; i++ {
		snap := r.Gather()
		ops := uint64(snap.Value("load.ops"))
		if ops < lastOps {
			t.Fatalf("counter went backwards: %d -> %d", lastOps, ops)
		}
		lastOps = ops
		for _, p := range snap {
			if p.Name != "load.lat" {
				continue
			}
			if p.Count < lastCount {
				t.Fatalf("histogram count went backwards: %d -> %d", lastCount, p.Count)
			}
			lastCount = p.Count
			if n := p.Buckets[len(p.Buckets)-1].N; n < lastBucket {
				t.Fatalf("bucket count went backwards: %d -> %d", lastBucket, n)
			} else {
				lastBucket = n
			}
		}
	}
	close(stop)
	wg.Wait()
}
