// Registry: the ops-plane metric surface. Every subsystem registers its
// counters under a stable dotted name (DESIGN.md §13 tables the scheme),
// and every consumer — the /metrics endpoint, the harness tables, marpctl
// digest -json — reads through the same names. Two instrument styles:
//
//   - typed instruments (Counter, Gauge, Histogram): atomic, safe to
//     update from any goroutine, for hot paths that observe as they go
//     (e.g. WAL fsync latency);
//   - read-through collectors (CounterFunc & friends): a closure sampled
//     at Gather time, for subsystems that already keep their own counters
//     (wal.Stats, disk.Stats, reliable.Stats, fabric NetStats). The
//     registry is a read path over those sources, never a second write
//     path — which is why wiring it cannot perturb the DES schedule.
//
// Collectors may read engine-owned state, so Gather must run on the
// owning execution context (transport.Server.GatherMetrics wraps it in
// the engine's exec). Typed instruments have no such requirement.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// MetricKind classifies a registered family.
type MetricKind int

const (
	KindCounter MetricKind = iota
	KindGauge
	KindHistogram
)

func (k MetricKind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// BucketCount is one cumulative histogram bucket: the number of
// observations ≤ Le.
type BucketCount struct {
	Le float64
	N  uint64
}

// Point is one gathered value. Counters and gauges fill Value; histograms
// fill Buckets (cumulative), Count, and Value (the sum of observations).
type Point struct {
	Name       string // dotted family name, e.g. "marp.wal.syncs"
	Kind       MetricKind
	LabelKey   string // optional, e.g. "shard"
	LabelValue string
	Value      float64
	Count      uint64
	Buckets    []BucketCount
}

// family is one registered name: its metadata plus the closure that
// appends its current points.
type family struct {
	name, help string
	kind       MetricKind
	collect    func([]Point) []Point
}

// Registry holds the registered families of one process (one per cluster;
// core.NewCluster builds it and registers every subsystem).
type Registry struct {
	mu       sync.RWMutex
	byName   map[string]*family
	families []*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// validName enforces the naming scheme: lowercase dotted words,
// [a-z0-9_] between the dots, at least one dot ("subsystem.metric").
func validName(name string) error {
	if name == "" {
		return fmt.Errorf("metrics: empty name")
	}
	if !strings.Contains(name, ".") {
		return fmt.Errorf("metrics: name %q has no subsystem prefix (want subsystem.metric)", name)
	}
	for _, part := range strings.Split(name, ".") {
		if part == "" {
			return fmt.Errorf("metrics: name %q has an empty dotted segment", name)
		}
		for _, r := range part {
			if (r < 'a' || r > 'z') && (r < '0' || r > '9') && r != '_' {
				return fmt.Errorf("metrics: name %q: invalid character %q (want [a-z0-9_.])", name, r)
			}
		}
	}
	return nil
}

// register installs a family; a duplicate or invalid name is a programming
// error and panics.
func (r *Registry) register(name, help string, kind MetricKind, collect func([]Point) []Point) *family {
	if err := validName(name); err != nil {
		panic(err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("metrics: duplicate registration of %q", name))
	}
	f := &family{name: name, help: help, kind: kind, collect: collect}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

// Counter is a monotonically increasing typed instrument.
type Counter struct {
	name string
	v    atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative; a counter never goes down).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Counter registers and returns a typed counter instrument.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{name: name}
	r.register(name, help, KindCounter, func(pts []Point) []Point {
		return append(pts, Point{Name: name, Kind: KindCounter, Value: float64(c.v.Load())})
	})
	return c
}

// Gauge is a typed instrument holding one settable value.
type Gauge struct {
	name string
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Gauge registers and returns a typed gauge instrument.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{name: name}
	r.register(name, help, KindGauge, func(pts []Point) []Point {
		return append(pts, Point{Name: name, Kind: KindGauge, Value: g.Value()})
	})
	return g
}

// Histogram is a typed instrument with fixed cumulative buckets. Observe
// is lock-free; Gather reads the buckets atomically (each bucket count is
// individually consistent, which is all a scrape needs).
type Histogram struct {
	name   string
	bounds []float64 // ascending upper bounds; +Inf is implicit
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Histogram registers and returns a typed histogram with the given
// ascending bucket upper bounds (a final +Inf bucket is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram %q buckets not ascending", name))
		}
	}
	h := &Histogram{name: name, bounds: bounds, counts: make([]atomic.Uint64, len(bounds))}
	r.register(name, help, KindHistogram, func(pts []Point) []Point {
		p := Point{Name: name, Kind: KindHistogram, Count: h.count.Load(), Value: h.Sum()}
		var cum uint64
		p.Buckets = make([]BucketCount, 0, len(h.bounds))
		for i, b := range h.bounds {
			cum += h.counts[i].Load()
			p.Buckets = append(p.Buckets, BucketCount{Le: b, N: cum})
		}
		return append(pts, p)
	})
	return h
}

// CounterFunc registers a read-through counter: fn is sampled at Gather
// time and must be monotonic (it normally reads an existing subsystem
// counter).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, KindCounter, func(pts []Point) []Point {
		return append(pts, Point{Name: name, Kind: KindCounter, Value: fn()})
	})
}

// GaugeFunc registers a read-through gauge.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, KindGauge, func(pts []Point) []Point {
		return append(pts, Point{Name: name, Kind: KindGauge, Value: fn()})
	})
}

// CounterVecFunc registers a labelled read-through counter: fn returns one
// value per label value (e.g. per shard).
func (r *Registry) CounterVecFunc(name, help, labelKey string, fn func() map[string]float64) {
	r.registerVec(name, help, KindCounter, labelKey, fn)
}

// GaugeVecFunc registers a labelled read-through gauge.
func (r *Registry) GaugeVecFunc(name, help, labelKey string, fn func() map[string]float64) {
	r.registerVec(name, help, KindGauge, labelKey, fn)
}

func (r *Registry) registerVec(name, help string, kind MetricKind, labelKey string, fn func() map[string]float64) {
	r.register(name, help, kind, func(pts []Point) []Point {
		vals := fn()
		keys := make([]string, 0, len(vals))
		for k := range vals {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return labelLess(keys[i], keys[j]) })
		for _, k := range keys {
			pts = append(pts, Point{Name: name, Kind: kind, LabelKey: labelKey, LabelValue: k, Value: vals[k]})
		}
		return pts
	})
}

// labelLess orders label values numerically when both parse as integers
// (shard "2" before shard "10"), lexically otherwise.
func labelLess(a, b string) bool {
	ai, aerr := strconv.Atoi(a)
	bi, berr := strconv.Atoi(b)
	if aerr == nil && berr == nil {
		return ai < bi
	}
	return a < b
}

// Snapshot is one gathered, name-sorted set of points.
type Snapshot []Point

// Gather samples every family and returns the points sorted by
// (name, label). Read-through collectors run here, so call Gather from the
// execution context that owns their sources (the cluster's engine loop).
func (r *Registry) Gather() Snapshot {
	r.mu.RLock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.RUnlock()
	var pts []Point
	for _, f := range fams {
		pts = f.collect(pts)
	}
	sort.SliceStable(pts, func(i, j int) bool {
		if pts[i].Name != pts[j].Name {
			return pts[i].Name < pts[j].Name
		}
		return labelLess(pts[i].LabelValue, pts[j].LabelValue)
	})
	return pts
}

// Value gathers just the named family and returns its (unlabelled) value —
// the cheap single-metric read path for call sites like the digest
// response's queue-drop count.
func (r *Registry) Value(name string) float64 {
	r.mu.RLock()
	f := r.byName[name]
	r.mu.RUnlock()
	if f == nil {
		return 0
	}
	for _, p := range f.collect(nil) {
		if p.LabelKey == "" {
			return p.Value
		}
	}
	return 0
}

// Help returns the registered help string for a family ("" if unknown).
func (r *Registry) Help(name string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if f := r.byName[name]; f != nil {
		return f.help
	}
	return ""
}

// Names returns all registered family names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.byName))
	for n := range r.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Value returns the unlabelled value of the named family in the snapshot
// (0 when absent — gathered metrics default to zero, so reads never need
// an existence dance).
func (s Snapshot) Value(name string) float64 {
	for _, p := range s {
		if p.Name == name && p.LabelKey == "" {
			return p.Value
		}
	}
	return 0
}

// Labeled returns the value of the named family at the given label value.
func (s Snapshot) Labeled(name, labelValue string) float64 {
	for _, p := range s {
		if p.Name == name && p.LabelValue == labelValue {
			return p.Value
		}
	}
	return 0
}

// Has reports whether the snapshot contains the named family.
func (s Snapshot) Has(name string) bool {
	for _, p := range s {
		if p.Name == name {
			return true
		}
	}
	return false
}

// promName mangles a dotted registry name into a Prometheus metric name:
// dots become underscores ("marp.wal.syncs" → "marp_wal_syncs").
func promName(name string) string { return strings.ReplaceAll(name, ".", "_") }

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4). The help strings come from the registry the
// snapshot was gathered from.
func (s Snapshot) WritePrometheus(w io.Writer, r *Registry) error {
	var b strings.Builder
	lastFamily := ""
	for _, p := range s {
		pn := promName(p.Name)
		if p.Name != lastFamily {
			lastFamily = p.Name
			if help := r.Help(p.Name); help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", pn, help)
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", pn, p.Kind)
		}
		switch p.Kind {
		case KindHistogram:
			for _, bk := range p.Buckets {
				fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", pn, formatFloat(bk.Le), bk.N)
			}
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", pn, p.Count)
			fmt.Fprintf(&b, "%s_sum %s\n", pn, formatFloat(p.Value))
			fmt.Fprintf(&b, "%s_count %d\n", pn, p.Count)
		default:
			if p.LabelKey != "" {
				fmt.Fprintf(&b, "%s{%s=%q} %s\n", pn, p.LabelKey, p.LabelValue, formatFloat(p.Value))
			} else {
				fmt.Fprintf(&b, "%s %s\n", pn, formatFloat(p.Value))
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
