package metrics

import (
	"fmt"
	"io"
	"strings"
	"unicode/utf8"
)

// Table is a simple aligned-column table for benchmark output. The harness
// renders one per figure, with the same rows/series the paper plots.
type Table struct {
	Title   string
	Note    string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint writes the table to w with aligned columns.
func (t *Table) Fprint(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = utf8.RuneCountInString(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if w := utf8.RuneCountInString(cell); i < len(widths) && w > widths[i] {
				widths[i] = w
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "  (%s)\n", t.Note)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - utf8.RuneCountInString(cell)
			}
			// Right-align numeric-looking cells, left-align the first column.
			if i == 0 {
				b.WriteString(cell)
				b.WriteString(strings.Repeat(" ", pad))
			} else {
				b.WriteString(strings.Repeat(" ", pad))
				b.WriteString(cell)
			}
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Fprint(&b)
	return b.String()
}
